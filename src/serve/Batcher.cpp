//===- serve/Batcher.cpp ---------------------------------------------------===//

#include "src/serve/Batcher.h"

#include <algorithm>
#include <chrono>
#include <cstring>

using namespace wootz;
using namespace wootz::serve;

Batcher::Batcher(std::shared_ptr<AssembledNetwork> Network,
                 BatcherOptions Options, RunLog *Log,
                 LatencyHistogram *Latency)
    : Network(std::move(Network)), Options(Options), Log(Log),
      Latency(Latency) {
  assert(this->Network && "batcher needs a network");
  const int Count = std::max(1, Options.Workers);
  Workers.reserve(static_cast<size_t>(Count));
  for (int I = 0; I < Count; ++I)
    Workers.emplace_back([this] { loop(); });
}

Batcher::~Batcher() { stop(); }

Result<Prediction> Batcher::predict(const Tensor &Sample) {
  assert(Sample.shape().rank() == 4 && Sample.shape()[0] == 1 &&
         "predict takes a single [1,C,H,W] sample");
  const auto Start = std::chrono::steady_clock::now();
  Pending Mine;
  Mine.Sample = &Sample;
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    if (Stopping)
      return Error::failure("model is draining");
    if (Queue.size() >= Options.MaxQueuedRequests)
      return Error::failure("model overloaded");
    Queue.push_back(&Mine);
    WorkReady.notify_one();
    BatchDone.wait(Lock, [&] { return Mine.Done; });
  }
  if (!Mine.Error.empty())
    return Error::failure(Mine.Error);

  Prediction Out;
  Out.Logits = std::move(Mine.Logits);
  Out.BatchSize = Mine.BatchSize;
  for (size_t I = 1; I < Out.Logits.size(); ++I)
    if (Out.Logits[I] > Out.Logits[Out.ArgMax])
      Out.ArgMax = static_cast<int>(I);
  if (Latency)
    Latency->record(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - Start)
                        .count());
  if (Log)
    Log->bump("serve.predict.requests");
  return Out;
}

void Batcher::loop() {
  // Each worker owns a private execution context over the shared model:
  // the Graph's parameters are read-only during serving, so workers run
  // concurrent forwards without copying a single weight.
  ExecContext Ctx(Network->Network);
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    WorkReady.wait(Lock, [&] { return Stopping || !Queue.empty(); });
    if (Queue.empty()) {
      if (Stopping)
        return;
      continue;
    }
    // Bounded coalescing wait: the first sample is already here; give
    // companions MaxWaitMicros to arrive, but never more, and cut at
    // MaxBatch. A full batch skips the wait entirely.
    const auto Deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(Options.MaxWaitMicros);
    while (Queue.size() < static_cast<size_t>(Options.MaxBatch) &&
           !Stopping) {
      if (WorkReady.wait_until(Lock, Deadline) ==
          std::cv_status::timeout)
        break;
    }
    // The wait releases the lock, so a companion worker may have drained
    // the queue in the meantime: go back to waiting instead of cutting
    // an empty batch.
    if (Queue.empty()) {
      if (Stopping)
        return;
      continue;
    }
    std::vector<Pending *> Batch;
    const size_t Take =
        std::min(Queue.size(), static_cast<size_t>(Options.MaxBatch));
    for (size_t I = 0; I < Take; ++I) {
      Batch.push_back(Queue.front());
      Queue.pop_front();
    }
    Lock.unlock();
    runBatch(Ctx, Batch);
    Lock.lock();
    for (Pending *P : Batch)
      P->Done = true;
    BatchDone.notify_all();
    if (Stopping && Queue.empty())
      return;
  }
}

void Batcher::runBatch(ExecContext &Ctx, std::vector<Pending *> &Batch) {
  const int Count = static_cast<int>(Batch.size());
  const Shape &One = Batch.front()->Sample->shape();
  Tensor Input(Shape{Count, One[1], One[2], One[3]});
  const size_t SampleSize = Batch.front()->Sample->size();
  for (int I = 0; I < Count; ++I)
    std::memcpy(Input.data() + static_cast<size_t>(I) * SampleSize,
                Batch[static_cast<size_t>(I)]->Sample->data(),
                SampleSize * sizeof(float));

  const Graph &Net = Network->Network;
  Ctx.setInput(Network->InputNode, std::move(Input));
  Ctx.forward(Net, /*Training=*/false);
  // User-named logits node: resolve through the checked accessor so a
  // bad name surfaces as a clean per-request error, never an abort.
  Result<const Tensor *> Found = Ctx.findActivation(Network->LogitsNode);
  if (!Found) {
    for (Pending *P : Batch)
      P->Error = Found.message();
    return;
  }
  const Tensor &Logits = **Found;
  if (Logits.shape().rank() != 2 || Logits.shape()[0] != Count) {
    for (Pending *P : Batch)
      P->Error = "model produced logits of unexpected shape " +
                 Logits.shape().str();
    return;
  }
  const int Classes = Logits.shape()[1];
  for (int I = 0; I < Count; ++I) {
    Pending &P = *Batch[static_cast<size_t>(I)];
    P.Logits = Tensor(Shape{Classes});
    std::memcpy(P.Logits.data(),
                Logits.data() + static_cast<size_t>(I) * Classes,
                static_cast<size_t>(Classes) * sizeof(float));
    P.BatchSize = Count;
  }
  if (Log) {
    Log->bump("serve.predict.batches");
    Log->bump("serve.predict.batched_samples", Count);
    if (Count > 1)
      Log->bump("serve.predict.coalesced", Count - 1);
  }
}

void Batcher::stop() {
  bool FirstStop = false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (!Stopping) {
      Stopping = true;
      FirstStop = true;
      // Everything still queued fails fast: drain means "finish what is
      // running, refuse the rest", and these have not started.
      for (Pending *P : Queue) {
        P->Error = "model is draining";
        P->Done = true;
      }
      Queue.clear();
      WorkReady.notify_all();
      BatchDone.notify_all();
    }
  }
  if (FirstStop)
    for (std::thread &W : Workers)
      if (W.joinable())
        W.join();
}

//===----------------------------------------------------------------------===//
// ModelRegistry
//===----------------------------------------------------------------------===//

Error ModelRegistry::add(const std::string &Id,
                         std::shared_ptr<AssembledNetwork> Network,
                         int Channels, int Height, int Width, int Classes,
                         std::string Origin) {
  if (!Network)
    return Error::failure("cannot register a null network");
  auto Model = std::make_unique<ServableModel>();
  Model->Id = Id;
  Model->Channels = Channels;
  Model->Height = Height;
  Model->Width = Width;
  Model->Classes = Classes;
  Model->Origin = std::move(Origin);
  Model->Engine = std::make_unique<Batcher>(std::move(Network), Batching,
                                            Log, Latency);
  std::lock_guard<std::mutex> Lock(Mutex);
  auto [It, Inserted] = Models.emplace(Id, std::move(Model));
  (void)It;
  if (!Inserted)
    return Error::failure("model id '" + Id + "' is already registered");
  Order.push_back(Id);
  if (Log)
    Log->bump("serve.models.registered");
  return Error::success();
}

ServableModel *ModelRegistry::find(const std::string &Id) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Models.find(Id);
  return It == Models.end() ? nullptr : It->second.get();
}

std::vector<std::string> ModelRegistry::ids() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Order;
}

size_t ModelRegistry::count() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Models.size();
}

void ModelRegistry::stopAll() {
  std::vector<ServableModel *> All;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (auto &[Id, Model] : Models)
      All.push_back(Model.get());
  }
  for (ServableModel *Model : All)
    Model->Engine->stop();
}
