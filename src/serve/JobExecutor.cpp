//===- serve/JobExecutor.cpp -----------------------------------------------===//

#include "src/serve/JobExecutor.h"

#include "src/data/Synthetic.h"
#include "src/explore/strategy/Driver.h"
#include "src/plan/Plan.h"
#include "src/serve/ArtifactStore.h"
#include "src/serve/ModelStore.h"
#include "src/support/File.h"
#include "src/support/Json.h"
#include "src/support/StringUtils.h"

#include <algorithm>
#include <chrono>

using namespace wootz;
using namespace wootz::serve;

//===----------------------------------------------------------------------===//
// Submission-body parsing (shared by submit-side 400s and claim-side
// execution)
//===----------------------------------------------------------------------===//

namespace {

/// "true"/"false" (the tokens the flat parser hands back for JSON
/// booleans) with a default for absent keys.
Result<bool> boolField(const std::map<std::string, std::string> &Body,
                       const std::string &Key, bool Default) {
  auto It = Body.find(Key);
  if (It == Body.end())
    return Default;
  if (It->second == "true")
    return true;
  if (It->second == "false")
    return false;
  return Error::failure("field '" + Key + "' must be true or false");
}

Result<long long>
integerField(const std::map<std::string, std::string> &Body,
             const std::string &Key, long long Default) {
  auto It = Body.find(Key);
  if (It == Body.end())
    return Default;
  Result<long long> Value = parseInteger(It->second);
  if (!Value)
    return Error::failure("field '" + Key + "' must be an integer");
  return *Value;
}

Result<double> doubleField(const std::map<std::string, std::string> &Body,
                           const std::string &Key, double Default) {
  auto It = Body.find(Key);
  if (It == Body.end())
    return Default;
  Result<double> Value = parseDouble(It->second);
  if (!Value)
    return Error::failure("field '" + Key + "' must be a number");
  return *Value;
}

} // namespace

Result<JobSpec>
wootz::serve::parseJobSpec(const std::map<std::string, std::string> &Body,
                           const ModelStore *Store, double DefaultScale) {
  JobSpec J;

  for (const char *Key : {"model", "subspace", "meta", "objective"})
    if (!Body.count(Key))
      return Error::failure(std::string("missing required field '") + Key +
                            "'");

  // "model" is either inline Prototxt or the id of an uploaded model;
  // ids are checked first (a bare id is never valid Prototxt, so the two
  // cannot collide).
  std::string ModelText = Body.at("model");
  if (Store) {
    Result<std::string> Stored = Store->prototxtFor(ModelText);
    if (Stored)
      ModelText = Stored.take();
  }
  Result<ModelSpec> Spec = parseModelSpec(ModelText);
  if (!Spec)
    return Error::failure("model: " + Spec.message());
  J.Spec = Spec.take();
  Result<std::vector<PruneConfig>> Subspace =
      parseSubspaceSpec(Body.at("subspace"));
  if (!Subspace)
    return Error::failure("subspace: " + Subspace.message());
  J.Subspace = Subspace.take();
  Result<TrainMeta> Meta = parseTrainMeta(Body.at("meta"));
  if (!Meta)
    return Error::failure("meta: " + Meta.message());
  J.Meta = Meta.take();
  Result<PruningObjective> Objective = parseObjective(Body.at("objective"));
  if (!Objective)
    return Error::failure("objective: " + Objective.message());
  J.Objective = Objective.take();

  // Subspace rates must fit the model: every configuration carries one
  // rate per convolution module.
  for (const PruneConfig &Config : J.Subspace)
    if (static_cast<int>(Config.size()) != J.Spec.moduleCount())
      return Error::failure(
          "subspace configurations carry " +
          std::to_string(Config.size()) + " rates but the model has " +
          std::to_string(J.Spec.moduleCount()) + " modules");

  Result<bool> Composability = boolField(Body, "composability", true);
  if (!Composability)
    return Error::failure(Composability.message());
  J.UseComposability = *Composability;
  Result<bool> Identifier = boolField(Body, "identifier", true);
  if (!Identifier)
    return Error::failure(Identifier.message());
  J.UseIdentifier = *Identifier;

  if (auto It = Body.find("schedule"); It != Body.end()) {
    if (It->second == "overlap")
      J.Schedule = PipelineSchedule::Overlap;
    else if (It->second == "evalonly")
      J.Schedule = PipelineSchedule::EvalOnly;
    else
      return Error::failure("schedule must be \"overlap\" or \"evalonly\"");
  }

  Result<long long> PipelineWorkers = integerField(Body, "workers", 2);
  if (!PipelineWorkers)
    return Error::failure(PipelineWorkers.message());
  if (*PipelineWorkers < 0 || *PipelineWorkers > 64)
    return Error::failure("workers must be in [0, 64]");
  J.PipelineWorkers = static_cast<int>(*PipelineWorkers);

  Result<double> DistillAlpha = doubleField(Body, "distill_alpha", 0.0);
  if (!DistillAlpha)
    return Error::failure(DistillAlpha.message());
  J.DistillAlpha = static_cast<float>(*DistillAlpha);
  // Any schedule composes with distillation (concurrent fine-tunes give
  // the shared teacher private execution contexts); only the weight's
  // range needs validating.
  if (J.DistillAlpha < 0.0f || J.DistillAlpha > 1.0f)
    return Error::failure("distill_alpha must be in [0, 1]");

  // Unknown strategy/criterion names are a 400 listing the valid names,
  // never a silent fallback to the default.
  if (auto It = Body.find("strategy"); It != Body.end()) {
    Result<StrategyKind> Kind = parseStrategyKind(It->second);
    if (!Kind)
      return Error::failure("strategy: " + Kind.message());
    J.Strategy = *Kind;
  }
  if (auto It = Body.find("criterion"); It != Body.end()) {
    Result<ImportanceCriterion> Criterion =
        parseImportanceCriterion(It->second);
    if (!Criterion)
      return Error::failure("criterion: " + Criterion.message());
    J.Criterion = *Criterion;
  }

  Result<long long> MaxRounds = integerField(Body, "max_rounds", 24);
  if (!MaxRounds)
    return Error::failure(MaxRounds.message());
  if (*MaxRounds < 1 || *MaxRounds > 256)
    return Error::failure("max_rounds must be in [1, 256]");
  J.MaxRounds = static_cast<int>(*MaxRounds);

  Result<double> Margin = doubleField(Body, "accuracy_margin", 0.02);
  if (!Margin)
    return Error::failure(Margin.message());
  if (*Margin < 0.0 || *Margin > 0.5)
    return Error::failure("accuracy_margin must be in [0, 0.5]");
  J.AccuracyMargin = *Margin;

  Result<long long> Seed = integerField(Body, "seed", 7);
  if (!Seed)
    return Error::failure(Seed.message());
  J.Seed = static_cast<uint64_t>(*Seed);

  Result<double> Scale = doubleField(Body, "dataset_scale", DefaultScale);
  if (!Scale)
    return Error::failure(Scale.message());
  if (*Scale <= 0.0 || *Scale > 4.0)
    return Error::failure("dataset_scale must be in (0, 4]");
  J.DatasetScale = *Scale;

  return J;
}

//===----------------------------------------------------------------------===//
// JobExecutor
//===----------------------------------------------------------------------===//

JobExecutor::JobExecutor(JobExecutorOptions Options, JobQueue &Queue,
                         ModelRegistry *Registry, RunLog *Log,
                         const ModelStore *Store, ArtifactStore *Artifacts)
    : Options(Options), Queue(Queue), Registry(Registry), Log(Log),
      Store(Store), Artifacts(Artifacts) {
  Queue.setNotifier([this] {
    std::lock_guard<std::mutex> Lock(Mutex);
    WorkHint = true;
    WorkReady.notify_all();
  });
  if (this->Options.ExecuteJobs) {
    const int Count = std::max(1, this->Options.Workers);
    Workers.reserve(static_cast<size_t>(Count));
    for (int I = 0; I < Count; ++I)
      Workers.emplace_back([this] { workerLoop(); });
    // Work submitted before the queue had a notifier (durable startup
    // pickup) is already claimable.
    if (Queue.queuedCount() > 0) {
      std::lock_guard<std::mutex> Lock(Mutex);
      WorkHint = true;
      WorkReady.notify_all();
    }
  }
  if (Queue.durable() || Artifacts)
    Maintenance = std::thread([this] { maintenanceLoop(); });
}

JobExecutor::~JobExecutor() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
    WorkReady.notify_all();
  }
  for (std::thread &T : Workers)
    T.join();
  if (Maintenance.joinable())
    Maintenance.join();
  Queue.setNotifier(nullptr);
}

void JobExecutor::workerLoop() {
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    WorkReady.wait(Lock, [&] { return Stopping || WorkHint; });
    WorkHint = false;
    Lock.unlock();
    // Drain everything claimable, then park. Like the old worker loop,
    // a stopping executor still finishes jobs already admitted.
    for (;;) {
      std::optional<JobRecord> Claimed = Queue.claim();
      if (!Claimed)
        break;
      runClaim(std::move(*Claimed));
    }
    Lock.lock();
    if (Stopping)
      return;
  }
}

void JobExecutor::maintenanceLoop() {
  if (Artifacts)
    (void)static_cast<bool>(Artifacts->heartbeat());
  const auto Period = std::chrono::duration<double>(
      std::max(0.01, Options.PollSeconds));
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    WorkReady.wait_for(Lock, Period, [&] { return Stopping; });
    if (Stopping)
      return;
    Lock.unlock();
    if (Artifacts)
      (void)static_cast<bool>(Artifacts->heartbeat());
    if (Queue.durable()) {
      Queue.poll();
      Queue.renewLeases();
      // A peer cancels a running job by writing a marker; the owning
      // executor is the one that must flip the token.
      for (const JobRecord &R : Queue.snapshot())
        if (R.State == JobState::Running && R.Owner == Queue.owner() &&
            Queue.cancelRequested(R.Id))
          cancelLocal(R.Id);
    }
    Lock.lock();
  }
}

void JobExecutor::runClaim(JobRecord Record) {
  ExecState *X = nullptr;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto &Slot = States[Record.Id];
    if (!Slot) {
      StateOrder.push_back(Record.Id);
      Slot = std::make_unique<ExecState>();
    } else {
      // Re-running a job this process reclaimed: fresh token and log.
      Slot = std::make_unique<ExecState>();
    }
    X = Slot.get();
  }
  // A cancel marker may have landed between submission and claim.
  if (Queue.cancelRequested(Record.Id))
    X->Token.cancel();

  Result<JobSpec> Spec =
      parseJobSpec(Record.Body, Store, Options.DatasetScale);
  if (!Spec) {
    // Local submissions were validated at submit time, so this is a
    // foreign journal whose model/spec no longer resolves here.
    finishJob(Record, *X, JobState::Failed, Spec.message());
    return;
  }
  runJob(Record, *Spec, *X);
}

void JobExecutor::finishJob(JobRecord &R, ExecState &X, JobState Terminal,
                            std::string Message) {
  // Persist the run artifacts before flipping the state, so a poller
  // that sees "done" can already read them.
  if (!Options.ArtifactDir.empty()) {
    const std::string Dir = Options.ArtifactDir + "/" + R.Id;
    Error TelemetryError = writeFileAtomic(
        Dir + "/telemetry.jsonl", telemetryJsonl(X.Log.snapshot()));
    // Artifacts are best-effort: a full disk must not fail the job.
    (void)static_cast<bool>(TelemetryError);
    JsonObject Summary;
    Summary.field("id", R.Id)
        .field("state", jobStateName(Terminal))
        .field("message", Message)
        .field("strategy", R.StrategyName)
        .field("criterion", R.CriterionName)
        .field("configs_evaluated", R.ConfigsEvaluated)
        .field("winner_index", R.WinnerIndex)
        .field("winner_accuracy", R.WinnerAccuracy, 6)
        .field("winner_size_fraction", R.WinnerSizeFraction, 6)
        .field("full_accuracy", R.FullAccuracy, 6)
        .field("model", R.ModelId);
    Error SummaryError =
        writeFileAtomic(Dir + "/result.json", Summary.str() + "\n");
    (void)static_cast<bool>(SummaryError);
  }
  Queue.finish(R, Terminal, std::move(Message));
}

void JobExecutor::runJob(JobRecord &R, const JobSpec &S, ExecState &X) {
  // The dataset: the CUB200 analogue sized to the model's class count,
  // deterministic in the job seed.
  const Dataset Data = generateSynthetic([&] {
    SyntheticSpec DataSpec = standardDatasetSpecs(S.DatasetScale)[1];
    DataSpec.Classes = S.Spec.Layers.back().NumOutput;
    DataSpec.Height = S.Spec.InputHeight;
    DataSpec.Width = S.Spec.InputWidth;
    DataSpec.Seed = S.Seed * 2654435761u + 1;
    return DataSpec;
  }());

  PipelineOptions PipeOptions;
  PipeOptions.UseComposability = S.UseComposability;
  PipeOptions.UseIdentifier = S.UseIdentifier;
  PipeOptions.Schedule = S.Schedule;
  PipeOptions.Workers = S.PipelineWorkers;
  PipeOptions.DistillAlpha = S.DistillAlpha;
  PipeOptions.CacheDir = Options.CacheDir;
  PipeOptions.BlockCacheConfig.Directory = Options.BlockCacheDir;
  PipeOptions.BlockCacheConfig.MaxBytes = Options.BlockCacheMaxBytes;
  PipeOptions.CancelObjective =
      S.Schedule == PipelineSchedule::Overlap ? &S.Objective : nullptr;
  PipeOptions.Cancel = &X.Token;
  PipeOptions.Log = &X.Log;
  PipeOptions.KeepNetworks = true;
  PipeOptions.Criterion = S.Criterion;

  Rng Generator(S.Seed);

  // Either the classic fixed-subspace sweep or a strategy-driven round
  // loop; both land in Outcome plus a winner storage index.
  PipelineResult Outcome;
  int WinnerStorage = -1;  ///< Index into Outcome.Evaluations.
  int WinnerPosition = -1; ///< Exploration position reported to clients.
  if (S.Strategy == StrategyKind::Fixed) {
    Result<PipelineResult> Run = runPruningPipeline(
        S.Spec, Data, S.Subspace, S.Meta, PipeOptions, Generator);
    if (!Run) {
      if (X.Token.cancelled()) {
        finishJob(R, X, JobState::Cancelled, "cancelled while running");
        return;
      }
      finishJob(R, X, JobState::Failed, Run.message());
      return;
    }
    Outcome = Run.take();
    const ExplorationSummary Summary =
        summarizeMeasuredRun(Outcome, S.Objective);
    R.ConfigsEvaluated = Summary.ConfigsEvaluated;
    R.WinnerSizeFraction = Summary.WinnerSizeFraction;
    WinnerPosition = Summary.WinnerIndex;
    if (Summary.WinnerIndex >= 0) {
      // Exploration position -> storage index (storage ascends model
      // size; a max-Accuracy objective walks it backwards).
      const size_t Count = Outcome.Evaluations.size();
      WinnerStorage = static_cast<int>(
          S.Objective.exploreSmallestFirst()
              ? static_cast<size_t>(Summary.WinnerIndex)
              : Count - 1 - static_cast<size_t>(Summary.WinnerIndex));
    }
  } else {
    StrategyKnobs Knobs;
    Knobs.Rates = subspaceRateAlphabet(S.Subspace);
    Knobs.MaxRounds = S.MaxRounds;
    Knobs.AccuracyMargin = S.AccuracyMargin;
    Result<std::unique_ptr<ExplorationStrategy>> Strategy =
        makeStrategy(S.Strategy, S.Spec, S.Subspace, S.Objective, Knobs);
    if (!Strategy) {
      finishJob(R, X, JobState::Failed, Strategy.message());
      return;
    }
    Result<StrategyRunResult> Run =
        runStrategyExploration(S.Spec, Data, **Strategy, S.Meta,
                               PipeOptions, S.Objective, Generator);
    if (!Run) {
      if (X.Token.cancelled()) {
        finishJob(R, X, JobState::Cancelled, "cancelled while running");
        return;
      }
      finishJob(R, X, JobState::Failed, Run.message());
      return;
    }
    R.Rounds = Run->Rounds;
    R.Proposals = Run->Proposals;
    Outcome = std::move(Run->Run);
    for (const EvaluatedConfig &E : Outcome.Evaluations)
      if (!E.Cancelled)
        ++R.ConfigsEvaluated;
    // Strategy results are stored in proposal order, so the storage
    // index is also the position clients see.
    WinnerStorage = Run->WinnerIndex;
    WinnerPosition = Run->WinnerIndex;
    if (WinnerStorage >= 0)
      R.WinnerSizeFraction =
          Outcome.Evaluations[static_cast<size_t>(WinnerStorage)]
              .SizeFraction;
  }

  R.FullAccuracy = Outcome.FullAccuracy;
  R.WinnerIndex = WinnerPosition;

  if (WinnerStorage >= 0) {
    const EvaluatedConfig &Winner =
        Outcome.Evaluations[static_cast<size_t>(WinnerStorage)];
    R.WinnerAccuracy = Winner.FinalAccuracy;
    // Freeze the winner into a static inference plan and persist the
    // compiler's decisions (step list, fusions, arena layout) next to
    // result.json. Best-effort like every other artifact; a graph the
    // plan compiler cannot lower simply skips the file.
    if (!Options.ArtifactDir.empty() && Winner.Network) {
      Result<ExecPlan> Frozen = ExecPlan::compile(
          Winner.Network->Network, Winner.Network->InputNode,
          Winner.Network->LogitsNode, S.Spec.InputChannels,
          S.Spec.InputHeight, S.Spec.InputWidth);
      if (Frozen) {
        Error PlanError = writeFileAtomic(
            Options.ArtifactDir + "/" + R.Id + "/plan.json",
            Frozen->describeJson() + "\n");
        (void)static_cast<bool>(PlanError);
        X.Log.bump("serve.jobs.plan_frozen");
      }
    }
    if (Registry && Winner.Network) {
      Error AddError = Registry->add(
          R.Id, Winner.Network, S.Spec.InputChannels, S.Spec.InputHeight,
          S.Spec.InputWidth, S.Spec.Layers.back().NumOutput,
          "job " + R.Id + " winner (size " +
              formatDouble(100.0 * Winner.SizeFraction, 1) + "%, acc " +
              formatDouble(Winner.FinalAccuracy, 3) + ")");
      if (!AddError)
        R.ModelId = R.Id;
    }
    finishJob(R, X, JobState::Done,
              "winner at exploration position " +
                  std::to_string(WinnerPosition));
    return;
  }
  finishJob(R, X, JobState::Done, "no configuration met the objective");
}

void JobExecutor::cancelLocal(const std::string &Id) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = States.find(Id);
  if (It != States.end())
    It->second->Token.cancel();
}

std::map<std::string, int64_t>
JobExecutor::countersFor(const std::string &Id) const {
  const RunLog *StateLog = nullptr;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = States.find(Id);
    if (It != States.end())
      StateLog = &It->second->Log;
  }
  return StateLog ? StateLog->counters()
                  : std::map<std::string, int64_t>();
}

std::map<std::string, int64_t> JobExecutor::aggregateCounters() const {
  std::vector<const RunLog *> Logs;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const std::string &Id : StateOrder)
      Logs.push_back(&States.at(Id)->Log);
  }
  std::map<std::string, int64_t> Out;
  for (const RunLog *StateLog : Logs)
    for (const auto &[Name, Value] : StateLog->counters())
      Out[Name] += Value;
  return Out;
}

void JobExecutor::waitSettled() {
  std::unique_lock<std::mutex> Lock(Mutex);
  while (!Queue.allSettled()) {
    // Foreign jobs settle via poll-side refreshes that may not notify,
    // so the wait is bounded rather than purely event-driven.
    WorkReady.wait_for(Lock, std::chrono::milliseconds(50),
                       [&] { return Stopping; });
    if (Stopping)
      return;
  }
}
