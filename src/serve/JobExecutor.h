//===- serve/JobExecutor.h - Claims and runs queued jobs -------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution half of the serve job path: worker threads that claim
/// jobs from a JobQueue, re-parse the submission body into a JobSpec,
/// and run runPruningPipeline / runStrategyExploration with a per-job
/// RunLog (live counters for GET /v1/jobs/<id>) and CancelToken. The
/// executor also owns the durable-mode maintenance thread: it polls the
/// queue for foreign journals, heartbeats claim leases and the artifact
/// store's process registration, and propagates cancel markers written
/// by peer processes into local cancel tokens.
///
/// Splitting parse (parseJobSpec) out of JobManager::submit is what
/// makes a job executable on a process that never saw its submission:
/// validation happens twice — once at submit for the 400 surface, once
/// at claim for execution — from the same code, so the two can never
/// disagree.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SERVE_JOBEXECUTOR_H
#define WOOTZ_SERVE_JOBEXECUTOR_H

#include "src/explore/Pipeline.h"
#include "src/explore/strategy/Strategy.h"
#include "src/serve/Batcher.h"
#include "src/serve/JobQueue.h"

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace wootz {
namespace serve {

class ArtifactStore;
class ModelStore;

/// A fully parsed, validated job request — the four Figure-2 inputs
/// plus the execution knobs. Produced by parseJobSpec from the flat
/// submission body; consumed by the executor.
struct JobSpec {
  ModelSpec Spec;
  std::vector<PruneConfig> Subspace;
  TrainMeta Meta;
  PruningObjective Objective;
  bool UseComposability = true;
  bool UseIdentifier = true;
  PipelineSchedule Schedule = PipelineSchedule::Overlap;
  int PipelineWorkers = 2;
  float DistillAlpha = 0.0f;
  uint64_t Seed = 7;
  double DatasetScale = 0.25;
  StrategyKind Strategy = StrategyKind::Fixed;
  ImportanceCriterion Criterion = ImportanceCriterion::L1Norm;
  int MaxRounds = 24;
  double AccuracyMargin = 0.02;
};

/// Parses and validates one job submission body. The error message is
/// exactly what the HTTP surface answers as the 400 body, and the same
/// call validates a claim on a foreign process — submit-side and
/// claim-side validation cannot drift apart. \p Store (optional)
/// resolves "model" values naming uploaded models; \p DefaultScale is
/// the daemon's dataset_scale default.
Result<JobSpec> parseJobSpec(const std::map<std::string, std::string> &Body,
                             const ModelStore *Store, double DefaultScale);

/// Execution-side knobs (the facade fills them from JobManagerOptions).
struct JobExecutorOptions {
  /// Worker threads; must already be resolved to a positive count.
  int Workers = 1;
  /// Cross-job tuning-block cache directory (empty disables).
  std::string BlockCacheDir;
  /// Trained-full-model cache directory (empty disables).
  std::string CacheDir;
  /// Per-job artifact root (result.json / telemetry.jsonl / plan.json).
  std::string ArtifactDir;
  /// Size cap handed to the tuning-block cache (0 = unlimited).
  uint64_t BlockCacheMaxBytes = 0;
  /// Default dataset_scale for claim-side re-parsing.
  double DatasetScale = 0.25;
  /// When false, this executor never claims jobs — the daemon is
  /// submit/observe-only and relies on peers to execute (used by tests
  /// to force cross-process execution, and by dedicated frontends).
  bool ExecuteJobs = true;
  /// Durable-mode maintenance period: queue poll, lease renewal,
  /// registry heartbeat, cancel-marker propagation.
  double PollSeconds = 0.25;
};

/// Claims jobs from a JobQueue and runs them. Owns the worker threads
/// and the per-job execution state (CancelToken, RunLog); the queue
/// owns the job table.
class JobExecutor {
public:
  /// \p Queue outlives the executor. \p Registry (optional) receives
  /// winning networks; \p Log (optional) gets serve.jobs.* counters;
  /// \p Store (optional) resolves uploaded-model references at claim;
  /// \p Artifacts (optional) gets its registration heartbeat from the
  /// maintenance thread.
  JobExecutor(JobExecutorOptions Options, JobQueue &Queue,
              ModelRegistry *Registry, RunLog *Log,
              const ModelStore *Store = nullptr,
              ArtifactStore *Artifacts = nullptr);
  ~JobExecutor();

  JobExecutor(const JobExecutor &) = delete;
  JobExecutor &operator=(const JobExecutor &) = delete;

  /// Cancels the token of a job this executor is running (or ran).
  /// No-op for unknown ids — the caller also marks the queue.
  void cancelLocal(const std::string &Id);

  /// Live counters of a locally executed job; empty for foreign jobs.
  std::map<std::string, int64_t> countersFor(const std::string &Id) const;

  /// Aggregated counters over every locally executed job's RunLog
  /// (cache.*, tasks_*): the /metrics feed.
  std::map<std::string, int64_t> aggregateCounters() const;

  /// Blocks until the queue has no queued or running job (drain).
  void waitSettled();

private:
  /// Per-claim execution state; kept after the job finishes so status
  /// and metrics readers can keep sampling its counters.
  struct ExecState {
    CancelToken Token;
    RunLog Log;
  };

  void workerLoop();
  void maintenanceLoop();
  void runClaim(JobRecord Record);
  void runJob(JobRecord &R, const JobSpec &S, ExecState &X);
  void finishJob(JobRecord &R, ExecState &X, JobState Terminal,
                 std::string Message);

  JobExecutorOptions Options;
  JobQueue &Queue;
  ModelRegistry *Registry = nullptr;
  RunLog *Log = nullptr;
  const ModelStore *Store = nullptr;
  ArtifactStore *Artifacts = nullptr;

  mutable std::mutex Mutex;
  std::condition_variable WorkReady;
  std::map<std::string, std::unique_ptr<ExecState>> States;
  std::vector<std::string> StateOrder; ///< Claim order, for aggregation.
  bool WorkHint = false;
  bool Stopping = false;
  std::vector<std::thread> Workers;
  std::thread Maintenance;
};

} // namespace serve
} // namespace wootz

#endif // WOOTZ_SERVE_JOBEXECUTOR_H
