//===- serve/ContextPool.h - Registry-wide execution-context pool ----------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A shared pool of execution contexts for the serving path. Without it
/// every batcher worker permanently owns one ExecContext (and, for
/// frozen models, one PlanContext) per model — N models x M workers
/// contexts' worth of activation buffers held even for models that have
/// not seen a request in minutes. The pool inverts that: workers acquire
/// a context for the duration of one batch and release it back, so
/// buffers are shared across workers of one model, and contexts idle
/// past a trim threshold are destroyed on the next release.
///
/// Contexts hold only scratch state (activation tensors, arena
/// buffers); model outputs are a pure function of weights and input, so
/// pooling cannot change a single logit — the Batcher's results are
/// bit-identical with and without it.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SERVE_CONTEXTPOOL_H
#define WOOTZ_SERVE_CONTEXTPOOL_H

#include "src/plan/Plan.h"
#include "src/runtime/RunLog.h"
#include "src/train/Assembly.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace wootz {
namespace serve {

/// Pool policy.
struct ContextPoolOptions {
  /// A context parked longer than this is destroyed at the next
  /// release (lazy trim — no dedicated timer thread).
  double IdleTrimSeconds = 30.0;
  /// Hard cap on parked contexts; beyond it the oldest is evicted.
  size_t MaxIdle = 64;
};

/// The registry-wide pool. Thread-safe.
class ContextPool {
  struct Entry {
    const AssembledNetwork *Key = nullptr;
    ExecContext Exec;
    PlanContext Plan;
    double ReleasedAt = 0.0;
  };

public:
  /// RAII handle over one acquired context pair; returns it to the
  /// pool on destruction.
  class Lease {
  public:
    Lease() = default;
    Lease(ContextPool *Pool, std::unique_ptr<Entry> E)
        : Pool(Pool), E(std::move(E)) {}
    Lease(Lease &&Other) noexcept
        : Pool(Other.Pool), E(std::move(Other.E)) {
      Other.Pool = nullptr;
    }
    Lease &operator=(Lease &&Other) noexcept {
      reset();
      Pool = Other.Pool;
      E = std::move(Other.E);
      Other.Pool = nullptr;
      return *this;
    }
    ~Lease() { reset(); }

    ExecContext &exec() { return E->Exec; }
    PlanContext &plan() { return E->Plan; }

  private:
    void reset() {
      if (Pool && E)
        Pool->release(std::move(E));
      Pool = nullptr;
    }
    ContextPool *Pool = nullptr;
    std::unique_ptr<Entry> E;
  };

  explicit ContextPool(ContextPoolOptions Options = ContextPoolOptions())
      : Options(Options) {}

  ContextPool(const ContextPool &) = delete;
  ContextPool &operator=(const ContextPool &) = delete;

  /// A context pair for \p Model: a parked one when available (buffers
  /// stay warm), freshly bound otherwise. \p Plan non-null additionally
  /// binds the plan context (frozen models).
  Lease acquire(const std::shared_ptr<AssembledNetwork> &Model,
                const ExecPlan *Plan);

  /// Destroys every parked context (registry teardown, before the
  /// model graphs go away).
  void clear();

  /// serve.contexts.* counters: pooled (currently parked), created,
  /// reused, trimmed.
  std::map<std::string, int64_t> counters() const;

private:
  friend class Lease;
  void release(std::unique_ptr<Entry> E);

  ContextPoolOptions Options;
  RunLog Clock; ///< Idle-age measurement only.
  mutable std::mutex Mutex;
  std::vector<std::unique_ptr<Entry>> Idle;
  int64_t Created = 0;
  int64_t Reused = 0;
  int64_t Trimmed = 0;
};

} // namespace serve
} // namespace wootz

#endif // WOOTZ_SERVE_CONTEXTPOOL_H
