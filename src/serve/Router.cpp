//===- serve/Router.cpp ----------------------------------------------------===//

#include "src/serve/Router.h"

#include "src/support/StringUtils.h"

#include <set>

using namespace wootz;
using namespace wootz::serve;

void Router::add(const std::string &Method, const std::string &Pattern,
                 RouteHandler Handle) {
  Route R;
  R.Method = Method;
  R.Segments = splitPath(Pattern);
  R.Handle = std::move(Handle);
  Routes.push_back(std::move(R));
}

std::vector<std::string> Router::splitPath(const std::string &Path) {
  std::vector<std::string> Parts;
  for (const std::string &Piece : split(Path, '/'))
    if (!Piece.empty())
      Parts.push_back(Piece);
  return Parts;
}

bool Router::match(const Route &R, const std::vector<std::string> &Parts,
                   std::vector<std::string> &Params) {
  if (R.Segments.size() != Parts.size())
    return false;
  Params.clear();
  for (size_t I = 0; I < Parts.size(); ++I) {
    const std::string &Pattern = R.Segments[I];
    if (!Pattern.empty() && Pattern[0] == ':')
      Params.push_back(Parts[I]);
    else if (Pattern != Parts[I])
      return false;
  }
  return true;
}

HttpResponse Router::dispatch(const HttpRequest &Request) const {
  const std::vector<std::string> Parts = splitPath(Request.path());
  std::vector<std::string> Params;
  std::set<std::string> AllowedMethods;
  for (const Route &R : Routes) {
    if (!match(R, Parts, Params))
      continue;
    if (R.Method == Request.Method)
      return R.Handle(Request, Params);
    AllowedMethods.insert(R.Method);
  }
  if (!AllowedMethods.empty()) {
    HttpResponse Response = errorResponse(
        405, "method " + Request.Method + " not allowed on " +
                 Request.path());
    std::vector<std::string> Allowed(AllowedMethods.begin(),
                                     AllowedMethods.end());
    Response.ExtraHeaders.emplace_back("Allow", join(Allowed, ", "));
    return Response;
  }
  return errorResponse(404, "no route for " + Request.path());
}
