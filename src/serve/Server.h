//===- serve/Server.h - The pruning-as-a-service daemon --------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// WootzServer ties the serve pieces together into the daemon the CLI's
/// `serve` subcommand runs: an HttpServer dispatching through a Router to
///
///   GET    /                        API index
///   GET    /healthz                 liveness (reports draining)
///   POST   /v1/jobs                 submit a prune-exploration job
///   GET    /v1/jobs                 list jobs
///   GET    /v1/jobs/:id             job status + live counters
///   DELETE /v1/jobs/:id             cancel a job
///   GET    /v1/models               list servable models
///   POST   /v1/models               upload a model (Prototxt + weights)
///   DELETE /v1/models/:id           remove an uploaded model
///   POST   /v1/models/:id/predict   micro-batched inference
///   GET    /metrics                 Prometheus text exposition
///
/// plus the graceful-drain sequence (stop accepting -> finish in-flight
/// requests -> finish accepted jobs -> stop batchers) that the SIGTERM
/// handler triggers.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SERVE_SERVER_H
#define WOOTZ_SERVE_SERVER_H

#include "src/serve/ArtifactStore.h"
#include "src/serve/Http.h"
#include "src/serve/JobManager.h"
#include "src/serve/ModelStore.h"
#include "src/serve/Router.h"

#include <atomic>
#include <memory>

namespace wootz {
namespace serve {

/// Everything the daemon needs to come up.
struct ServerOptions {
  HttpServerOptions Http;
  JobManagerOptions Jobs;
  BatcherOptions Batching;
  ModelStoreOptions Uploads;
  /// Shared multi-process tier. When Artifacts.Root is set it overrides
  /// the per-daemon directory options: uploads, caches, job journals
  /// and artifacts all live under the one root, and any daemon pointed
  /// at it serves the same models and executes the same job queue.
  ArtifactStoreOptions Artifacts;
};

/// The assembled daemon.
class WootzServer {
public:
  explicit WootzServer(ServerOptions Options);
  ~WootzServer();

  WootzServer(const WootzServer &) = delete;
  WootzServer &operator=(const WootzServer &) = delete;

  /// Binds and starts serving.
  Error start();

  /// The bound port (useful with Options.Http.Port = 0).
  int port() const;

  /// Graceful drain: stop accepting connections, finish every in-flight
  /// request, run every accepted job to a terminal state, then stop the
  /// prediction batchers. Idempotent; safe from a signal-watcher thread.
  void drain();

  /// The /metrics payload (also available without HTTP, for tools).
  std::string metricsText() const;

  // Direct access for tests and for preloading models.
  JobManager &jobs() { return Jobs; }
  ModelRegistry &models() { return Registry; }
  ModelStore &uploads() { return Store; }
  ArtifactStore &artifacts() { return Artifacts; }
  RunLog &log() { return Log; }

private:
  void buildRoutes();
  HttpResponse handle(const HttpRequest &Request);

  HttpResponse indexResponse() const;
  HttpResponse submitJob(const HttpRequest &Request);
  HttpResponse uploadModel(const HttpRequest &Request);
  HttpResponse predict(const HttpRequest &Request, const std::string &Id);

  ServerOptions Options;
  RunLog Log; ///< Server-level counters (http.*, serve.*).
  LatencyHistogram RequestLatency; ///< Whole-request, any endpoint.
  LatencyHistogram PredictLatency; ///< predict() wait+forward time.
  // Destruction order matters: Http first (joins request threads, which
  // touch Jobs/Store/Registry), then Jobs (joins job workers, which
  // publish into Registry and read the Store), then Store, then
  // Registry, then Artifacts (whose destructor unregisters the process
  // from the shared tier). Members are declared in reverse.
  ArtifactStore Artifacts;
  ModelRegistry Registry;
  ModelStore Store;
  JobManager Jobs;
  Router Routes;
  std::unique_ptr<HttpServer> Http;
  std::atomic<bool> Drained{false};
  std::mutex DrainMutex; ///< Serializes concurrent drain() calls.
};

} // namespace serve
} // namespace wootz

#endif // WOOTZ_SERVE_SERVER_H
