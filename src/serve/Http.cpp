//===- serve/Http.cpp ------------------------------------------------------===//

#include "src/serve/Http.h"

#include "src/support/Json.h"
#include "src/support/StringUtils.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace wootz;
using namespace wootz::serve;

const std::string HttpRequest::EmptyValue;

std::string HttpRequest::path() const {
  const size_t Query = Target.find('?');
  return Query == std::string::npos ? Target : Target.substr(0, Query);
}

const std::string &HttpRequest::header(const std::string &Name,
                                       const std::string &Default) const {
  auto It = Headers.find(Name);
  return It == Headers.end() ? Default : It->second;
}

const char *wootz::serve::httpStatusReason(int Status) {
  switch (Status) {
  case 200:
    return "OK";
  case 202:
    return "Accepted";
  case 400:
    return "Bad Request";
  case 404:
    return "Not Found";
  case 405:
    return "Method Not Allowed";
  case 408:
    return "Request Timeout";
  case 411:
    return "Length Required";
  case 413:
    return "Payload Too Large";
  case 429:
    return "Too Many Requests";
  case 431:
    return "Request Header Fields Too Large";
  case 500:
    return "Internal Server Error";
  case 501:
    return "Not Implemented";
  case 503:
    return "Service Unavailable";
  case 505:
    return "HTTP Version Not Supported";
  default:
    return "Unknown";
  }
}

HttpResponse wootz::serve::errorResponse(int Status,
                                         const std::string &Message) {
  HttpResponse Response;
  Response.Status = Status;
  JsonObject Body;
  Body.field("error", Message).field("status", Status);
  Response.Body = Body.str() + "\n";
  return Response;
}

std::string wootz::serve::serializeResponse(const HttpResponse &Response) {
  std::string Out = "HTTP/1.1 " + std::to_string(Response.Status) + " " +
                    httpStatusReason(Response.Status) + "\r\n";
  Out += "Content-Type: " + Response.ContentType + "\r\n";
  Out += "Content-Length: " + std::to_string(Response.Body.size()) + "\r\n";
  for (const auto &[Name, Value] : Response.ExtraHeaders)
    Out += Name + ": " + Value + "\r\n";
  Out += "Connection: close\r\n\r\n";
  Out += Response.Body;
  return Out;
}

//===----------------------------------------------------------------------===//
// Request parsing
//===----------------------------------------------------------------------===//

HttpRequestParser::State HttpRequestParser::fail(int Status,
                                                 std::string Detail) {
  Current = State::Failed;
  ErrorStatus = Status;
  ErrorDetail = std::move(Detail);
  Buffer.clear();
  Buffer.shrink_to_fit();
  return Current;
}

/// Splits one header block line, tolerating both \r\n and bare \n.
static std::vector<std::string_view> headLines(std::string_view Head) {
  std::vector<std::string_view> Lines;
  size_t Start = 0;
  while (Start <= Head.size()) {
    size_t End = Head.find('\n', Start);
    if (End == std::string_view::npos) {
      if (Start < Head.size())
        Lines.push_back(Head.substr(Start));
      break;
    }
    size_t Stop = End;
    if (Stop > Start && Head[Stop - 1] == '\r')
      --Stop;
    Lines.push_back(Head.substr(Start, Stop - Start));
    Start = End + 1;
  }
  return Lines;
}

HttpRequestParser::State HttpRequestParser::parseHead() {
  // The terminator: \r\n\r\n, with a lenient eye for bare \n\n.
  size_t HeadEnd = Buffer.find("\r\n\r\n");
  size_t TermLen = 4;
  {
    const size_t Bare = Buffer.find("\n\n");
    if (Bare != std::string::npos &&
        (HeadEnd == std::string::npos || Bare < HeadEnd)) {
      HeadEnd = Bare;
      TermLen = 2;
    }
  }
  if (HeadEnd == std::string::npos) {
    if (Buffer.size() > Limits.MaxHeaderBytes)
      return fail(431, "request head exceeds " +
                           std::to_string(Limits.MaxHeaderBytes) + " bytes");
    return State::Headers;
  }
  if (HeadEnd > Limits.MaxHeaderBytes)
    return fail(431, "request head exceeds " +
                         std::to_string(Limits.MaxHeaderBytes) + " bytes");

  const std::vector<std::string_view> Lines =
      headLines(std::string_view(Buffer).substr(0, HeadEnd));
  if (Lines.empty())
    return fail(400, "empty request head");

  // Request line: METHOD SP target SP HTTP/1.x — exactly three tokens.
  {
    const std::vector<std::string> Parts =
        split(std::string_view(Lines[0]), ' ');
    if (Parts.size() != 3 || Parts[0].empty() || Parts[1].empty())
      return fail(400, "malformed request line");
    for (char C : Parts[0])
      if (C < 'A' || C > 'Z')
        return fail(400, "malformed method token");
    if (!startsWith(Parts[2], "HTTP/"))
      return fail(400, "malformed HTTP version");
    if (Parts[2] != "HTTP/1.1" && Parts[2] != "HTTP/1.0")
      return fail(505, "unsupported HTTP version " + Parts[2]);
    Request.Method = Parts[0];
    Request.Target = Parts[1];
    Request.Version = Parts[2];
  }

  for (size_t I = 1; I < Lines.size(); ++I) {
    const std::string_view Line = Lines[I];
    if (Line.empty())
      continue;
    const size_t Colon = Line.find(':');
    if (Colon == std::string_view::npos || Colon == 0)
      return fail(400, "malformed header line");
    std::string Name(trim(Line.substr(0, Colon)));
    if (Name.empty() || Name.find(' ') != std::string::npos ||
        Name.find('\t') != std::string::npos)
      return fail(400, "malformed header name");
    std::transform(Name.begin(), Name.end(), Name.begin(), [](char C) {
      return C >= 'A' && C <= 'Z' ? static_cast<char>(C - 'A' + 'a') : C;
    });
    if (Request.Headers.size() >= Limits.MaxHeaderCount)
      return fail(431, "more than " +
                           std::to_string(Limits.MaxHeaderCount) +
                           " headers");
    // Last occurrence wins; duplicate Content-Length is rejected below
    // via strict re-parse of the surviving value.
    Request.Headers[Name] = std::string(trim(Line.substr(Colon + 1)));
  }

  if (Request.Headers.count("transfer-encoding"))
    return fail(501, "transfer-encoding is not supported");

  BodyExpected = 0;
  if (auto It = Request.Headers.find("content-length");
      It != Request.Headers.end()) {
    Result<long long> Length = parseInteger(It->second);
    if (!Length || *Length < 0)
      return fail(400, "malformed Content-Length");
    if (static_cast<size_t>(*Length) > Limits.MaxBodyBytes)
      return fail(413, "body exceeds " +
                           std::to_string(Limits.MaxBodyBytes) + " bytes");
    BodyExpected = static_cast<size_t>(*Length);
  }

  Buffer.erase(0, HeadEnd + TermLen);
  Current = State::Body;
  return Current;
}

HttpRequestParser::State HttpRequestParser::consume(std::string_view Bytes) {
  if (Current == State::Complete || Current == State::Failed)
    return Current;
  Buffer.append(Bytes.data(), Bytes.size());
  if (Current == State::Headers) {
    if (parseHead() != State::Body)
      return Current;
  }
  // Body state: wait for exactly BodyExpected bytes; anything beyond is a
  // pipelined second request, which the one-request-per-connection server
  // does not speak.
  if (Buffer.size() < BodyExpected)
    return Current;
  if (Buffer.size() > BodyExpected)
    return fail(400, "unexpected bytes after the request body");
  Request.Body = std::move(Buffer);
  Buffer.clear();
  Current = State::Complete;
  return Current;
}

HttpRequest HttpRequestParser::take() {
  assert(Current == State::Complete && "taking an incomplete request");
  Current = State::Headers;
  BodyExpected = 0;
  return std::move(Request);
}

Result<HttpRequest> wootz::serve::parseHttpRequest(std::string_view Raw,
                                                   HttpLimits Limits) {
  HttpRequestParser Parser(Limits);
  switch (Parser.consume(Raw)) {
  case HttpRequestParser::State::Complete:
    return Parser.take();
  case HttpRequestParser::State::Failed:
    return Error::failure(Parser.errorDetail());
  default:
    return Error::failure("truncated HTTP request");
  }
}

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

namespace {

void setSocketTimeouts(int Fd, int Millis) {
  timeval Timeout;
  Timeout.tv_sec = Millis / 1000;
  Timeout.tv_usec = (Millis % 1000) * 1000;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Timeout, sizeof(Timeout));
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Timeout, sizeof(Timeout));
}

/// Best-effort full write (the peer may have gone away; that is fine).
void sendAll(int Fd, std::string_view Bytes) {
  size_t Sent = 0;
  while (Sent < Bytes.size()) {
    const ssize_t N = ::send(Fd, Bytes.data() + Sent, Bytes.size() - Sent,
                             MSG_NOSIGNAL);
    if (N <= 0)
      return;
    Sent += static_cast<size_t>(N);
  }
}

void sendResponse(int Fd, const HttpResponse &Response) {
  sendAll(Fd, serializeResponse(Response));
}

} // namespace

HttpServer::HttpServer(HttpServerOptions Options, Handler Handle,
                       RunLog *Log)
    : Options(Options), Handle(std::move(Handle)), Log(Log) {}

HttpServer::~HttpServer() { finishDrain(); }

void HttpServer::bump(const std::string &Name) {
  if (Log)
    Log->bump(Name);
}

Error HttpServer::start() {
  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Error::failure(std::string("socket: ") + std::strerror(errno));
  const int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Address{};
  Address.sin_family = AF_INET;
  Address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Address.sin_port = htons(static_cast<uint16_t>(Options.Port));
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Address),
             sizeof(Address)) != 0) {
    const std::string Message =
        "bind 127.0.0.1:" + std::to_string(Options.Port) + ": " +
        std::strerror(errno);
    ::close(Fd);
    return Error::failure(Message);
  }
  socklen_t AddressLen = sizeof(Address);
  ::getsockname(Fd, reinterpret_cast<sockaddr *>(&Address), &AddressLen);
  BoundPort = ntohs(Address.sin_port);
  if (::listen(Fd, 128) != 0) {
    const std::string Message =
        std::string("listen: ") + std::strerror(errno);
    ::close(Fd);
    return Error::failure(Message);
  }
  ListenFd.store(Fd);

  Pool = std::make_unique<ThreadPool>(
      static_cast<unsigned>(std::max(1, Options.Workers)));
  Acceptor = std::thread([this] { acceptLoop(); });
  return Error::success();
}

void HttpServer::acceptLoop() {
  for (;;) {
    const int Listener = ListenFd.load();
    if (Listener < 0)
      return;
    const int Fd = ::accept(Listener, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      // Listener closed by beginDrain(), or a hard error: stop.
      return;
    }
    if (Draining.load()) {
      setSocketTimeouts(Fd, Options.SocketTimeoutMillis);
      sendResponse(Fd, errorResponse(503, "server is draining"));
      ::close(Fd);
      bump("http.rejected_draining");
      continue;
    }
    // The admission gate: bounded work-in-progress, immediate 503 beyond
    // it. This is what keeps a traffic spike from queueing unboundedly
    // behind slow handlers.
    size_t Current = Depth.load();
    bool Admitted = false;
    while (Current < Options.MaxQueuedConnections) {
      if (Depth.compare_exchange_weak(Current, Current + 1)) {
        Admitted = true;
        break;
      }
    }
    if (!Admitted) {
      setSocketTimeouts(Fd, Options.SocketTimeoutMillis);
      HttpResponse Overloaded = errorResponse(503, "server overloaded");
      Overloaded.ExtraHeaders.emplace_back("Retry-After", "1");
      sendResponse(Fd, Overloaded);
      ::close(Fd);
      bump("http.rejected_overload");
      continue;
    }
    bump("http.accepted");
    const auto At = std::chrono::steady_clock::now();
    Pool->enqueue([this, Fd, At] {
      handleConnection(Fd, At);
      Depth.fetch_sub(1);
    });
  }
}

void HttpServer::handleConnection(
    int Fd, std::chrono::steady_clock::time_point At) {
  setSocketTimeouts(Fd, Options.SocketTimeoutMillis);

  // Queue-wait deadline: if the request sat behind slow work past its
  // deadline, answer 503 without reading or running anything.
  const auto Waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - At);
  if (Waited.count() > Options.RequestDeadlineMillis) {
    sendResponse(Fd, errorResponse(503, "request deadline exceeded in "
                                        "queue"));
    ::close(Fd);
    bump("http.deadline_exceeded");
    return;
  }

  HttpRequestParser Parser(Options.Limits);
  char Chunk[8192];
  for (;;) {
    const ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      // EAGAIN/EWOULDBLOCK: the SO_RCVTIMEO expired mid-request.
      sendResponse(Fd, errorResponse(408, "timed out reading the request"));
      ::close(Fd);
      bump("http.read_timeout");
      return;
    }
    if (N == 0) {
      // Peer closed before completing a request (complete requests break
      // out of the loop below, so EOF here always means truncation).
      sendResponse(Fd, errorResponse(400, "truncated request"));
      ::close(Fd);
      bump("http.truncated");
      return;
    }
    const HttpRequestParser::State S =
        Parser.consume(std::string_view(Chunk, static_cast<size_t>(N)));
    if (S == HttpRequestParser::State::Complete)
      break;
    if (S == HttpRequestParser::State::Failed) {
      sendResponse(Fd,
                   errorResponse(Parser.errorStatus(), Parser.errorDetail()));
      ::close(Fd);
      bump("http.malformed");
      return;
    }
  }

  const HttpRequest Request = Parser.take();
  bump("http.requests");
  HttpResponse Response = Handle(Request);
  sendResponse(Fd, Response);
  ::close(Fd);
}

void HttpServer::beginDrain() {
  if (Draining.exchange(true))
    return;
  const int Fd = ListenFd.exchange(-1);
  if (Fd >= 0) {
    // shutdown() wakes the blocked accept(); close() releases the port.
    ::shutdown(Fd, SHUT_RDWR);
    ::close(Fd);
  }
}

void HttpServer::finishDrain() {
  beginDrain();
  if (Finished.exchange(true))
    return;
  if (Acceptor.joinable())
    Acceptor.join();
  if (Pool) {
    Pool->wait();
    Pool.reset();
  }
}
