//===- serve/Batcher.h - Dynamic micro-batched inference -------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inference path of the serve daemon. Each servable model owns one
/// Batcher: a small pool of worker threads that share the model's Graph
/// read-only, each forwarding through a private ExecContext, so one hot
/// model scales across workers instead of being pinned to a single
/// thread. Workers coalesce concurrent predict requests into one NCHW
/// batch, which is what lets HTTP traffic exercise the batch-parallel
/// Conv2D kernels: when the first sample arrives a worker waits up to
/// MaxWaitMicros for companions (bounded wait), cuts the batch at
/// MaxBatch, runs a single eval-mode forward, and fans the logit rows
/// back out to the waiting request threads.
///
/// Callers block in predict() on a condition variable; a bounded pending
/// queue turns overload into an immediate "overloaded" error (the
/// HTTP layer maps it to 429) instead of unbounded memory growth.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SERVE_BATCHER_H
#define WOOTZ_SERVE_BATCHER_H

#include "src/plan/Plan.h"
#include "src/runtime/RunLog.h"
#include "src/serve/ContextPool.h"
#include "src/serve/Metrics.h"
#include "src/support/Error.h"
#include "src/train/Assembly.h"

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace wootz {
namespace serve {

/// Batching policy knobs.
struct BatcherOptions {
  /// Largest batch a single forward pass may carry.
  int MaxBatch = 8;
  /// How long the first request of a batch waits for companions.
  int MaxWaitMicros = 2000;
  /// Pending-request cap; beyond it predict() fails fast ("overloaded").
  size_t MaxQueuedRequests = 64;
  /// Worker threads per model. Each forwards the shared Graph through a
  /// private ExecContext, so concurrent batches overlap on one model.
  int Workers = 2;
  /// Freeze each registered model into a static ExecPlan at add() time
  /// and serve through PlanContexts instead of the Graph interpreter.
  /// Models whose graphs fail to compile fall back to the interpreter
  /// (the registry bumps `serve.models.plan_fallback`).
  bool UsePlans = false;
  /// Acquire execution contexts from the registry-wide ContextPool per
  /// batch instead of pinning one to every worker thread. Identical
  /// outputs (contexts are scratch state); bounds idle memory via the
  /// pool's trim policy.
  bool PoolContexts = true;
  /// Pool trim policy (meaningful with PoolContexts).
  ContextPoolOptions Pool;
};

/// What one prediction returns.
struct Prediction {
  Tensor Logits; ///< Rank-1, one value per class.
  int ArgMax = 0;
  /// Size of the batch this request rode in (the occupancy signal).
  int BatchSize = 1;
};

/// One model's batching inference engine.
class Batcher {
public:
  /// Takes shared ownership of \p Network; \p Log (optional) receives
  /// `serve.predict.*` counters, \p Latency (optional) per-request
  /// forward latencies. When \p Plan is non-null every worker executes
  /// it through a private PlanContext instead of interpreting the
  /// Graph; the network is still kept alive for provenance.
  /// \p Pool (optional) supplies per-batch execution contexts; without
  /// it every worker owns its contexts for its whole lifetime.
  Batcher(std::shared_ptr<AssembledNetwork> Network, BatcherOptions Options,
          RunLog *Log, LatencyHistogram *Latency,
          std::shared_ptr<const ExecPlan> Plan = nullptr,
          ContextPool *Pool = nullptr);
  ~Batcher();

  Batcher(const Batcher &) = delete;
  Batcher &operator=(const Batcher &) = delete;

  /// Runs \p Sample (shape [1, C, H, W]) through the model, riding a
  /// shared batch when traffic allows. Blocks until the result is ready;
  /// fails fast when the queue is full or the batcher is stopping.
  Result<Prediction> predict(const Tensor &Sample);

  /// Rejects new work and fails everything still queued ("draining"),
  /// then joins the worker threads. Idempotent.
  void stop();

private:
  struct Pending {
    const Tensor *Sample = nullptr;
    Tensor Logits;
    int BatchSize = 0;
    std::string Error; ///< Non-empty on failure.
    bool Done = false;
  };

  void loop();
  void runBatch(ExecContext &Ctx, std::vector<Pending *> &Batch);
  void runBatch(PlanContext &Ctx, std::vector<Pending *> &Batch);
  /// Assembles one NCHW input tensor from the batch's [1,C,H,W] samples.
  static Tensor assembleBatch(const std::vector<Pending *> &Batch);
  /// Shape-checks \p Logits and copies each row back to its request.
  void fanOut(const Tensor &Logits, std::vector<Pending *> &Batch);

  std::shared_ptr<AssembledNetwork> Network;
  std::shared_ptr<const ExecPlan> Plan;
  BatcherOptions Options;
  RunLog *Log = nullptr;
  LatencyHistogram *Latency = nullptr;
  ContextPool *Pool = nullptr;

  std::mutex Mutex;
  std::condition_variable WorkReady; ///< Signals the worker threads.
  std::condition_variable BatchDone; ///< Broadcast to waiting callers.
  std::deque<Pending *> Queue;
  bool Stopping = false;
  std::vector<std::thread> Workers;
};

/// A registered model: its network, expected input shape, and batcher.
struct ServableModel {
  std::string Id;
  int Channels = 0;
  int Height = 0;
  int Width = 0;
  int Classes = 0;
  /// Provenance note surfaced in the model listing ("job job-3 winner",
  /// "preloaded full model", ...).
  std::string Origin;
  /// The frozen static plan when BatcherOptions::UsePlans compiled one;
  /// null means the batcher interprets the Graph.
  std::shared_ptr<const ExecPlan> Plan;
  std::unique_ptr<Batcher> Engine;
};

/// Thread-safe id -> ServableModel table. Removed models are retired,
/// not destroyed — their engines stop (in-flight predicts fail cleanly)
/// but the objects live until the registry does, so find() results held
/// by concurrent request handlers stay valid until stopAll().
class ModelRegistry {
public:
  explicit ModelRegistry(BatcherOptions Batching, RunLog *Log,
                         LatencyHistogram *Latency)
      : Batching(Batching), Log(Log), Latency(Latency),
        Contexts(Batching.Pool) {}

  /// Engines stop (joining the worker threads that use the context
  /// pool) before the pool's contexts are torn down, which in turn
  /// happens while the model graphs are still alive.
  ~ModelRegistry() {
    stopAll();
    Contexts.clear();
  }

  /// Registers \p Network under \p Id with the given input geometry.
  /// Fails if the id is taken.
  Error add(const std::string &Id,
            std::shared_ptr<AssembledNetwork> Network, int Channels,
            int Height, int Width, int Classes, std::string Origin);

  /// Unregisters \p Id: its engine stops (queued predicts fail with
  /// "model is draining") and the id becomes free again. The
  /// ServableModel object is retired rather than destroyed; see the
  /// class comment.
  Error remove(const std::string &Id);

  /// Looks up a model; nullptr when absent.
  ServableModel *find(const std::string &Id);

  /// Registered ids, insertion-ordered.
  std::vector<std::string> ids() const;

  size_t count() const;

  /// Stops every batcher (drain step). Idempotent.
  void stopAll();

  /// serve.contexts.* counters of the shared pool (the /metrics feed).
  std::map<std::string, int64_t> contextCounters() const {
    return Contexts.counters();
  }

private:
  BatcherOptions Batching;
  RunLog *Log = nullptr;
  LatencyHistogram *Latency = nullptr;
  /// Declared before the model tables: destroyed after them in reverse
  /// order, but the destructor clears it explicitly first — see above.
  ContextPool Contexts;
  mutable std::mutex Mutex;
  std::vector<std::string> Order;
  std::map<std::string, std::unique_ptr<ServableModel>> Models;
  /// Removed models, kept alive so raw pointers from find() never dangle.
  std::vector<std::unique_ptr<ServableModel>> Retired;
};

} // namespace serve
} // namespace wootz

#endif // WOOTZ_SERVE_BATCHER_H
