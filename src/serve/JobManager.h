//===- serve/JobManager.h - Prune-exploration job execution ----------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The job half of the serve daemon: accepts prune-exploration requests
/// (model spec + promising subspace + solver meta + objective, the same
/// four Figure-2 inputs the CLI takes), queues them behind a bounded
/// admission gate (429 beyond it), and runs them on worker threads via
/// runPruningPipeline with
///
///  - a per-job RunLog, so GET /v1/jobs/<id> serves *live* counters
///    (cache.*, tasks_*) for a running job via RunLog::counters();
///  - a per-job CancelToken, so DELETE cancels a queued job instantly
///    and a running one at its next task boundary (the TaskGraph then
///    cascade-cancels everything not yet started);
///  - a shared BlockCache directory, so tuning blocks stay warm across
///    jobs: a job whose (teacher, hyperparameters) context matches a
///    previous one pre-trains nothing.
///
/// A finished job registers its winning pruned network (per the job's
/// objective) in the ModelRegistry under the job id, which is what
/// POST /v1/models/<id>/predict serves.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SERVE_JOBMANAGER_H
#define WOOTZ_SERVE_JOBMANAGER_H

#include "src/explore/Pipeline.h"
#include "src/explore/strategy/Strategy.h"
#include "src/serve/Batcher.h"

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace wootz {
namespace serve {

class ModelStore;

/// Job-side knobs.
struct JobManagerOptions {
  /// Job executor threads — how many explorations run concurrently.
  int Workers = 1;
  /// Queued-job cap; submissions beyond it are answered 429.
  size_t MaxQueuedJobs = 8;
  /// Cross-job tuning-block cache directory (empty disables).
  std::string BlockCacheDir;
  /// Trained-full-model cache directory (empty disables).
  std::string CacheDir;
  /// When non-empty, each finished job writes telemetry.jsonl and
  /// result.json under "<ArtifactDir>/<job id>/" (the drain-time
  /// checkpoint persistence, in addition to the block cache's own
  /// as-trained publishing).
  std::string ArtifactDir;
  /// Per-class example multiplier of the synthetic dataset jobs train on.
  double DatasetScale = 0.25;
};

/// Job life cycle. Queued -> Running -> {Done, Failed, Cancelled};
/// Queued -> Cancelled directly when cancelled before starting.
enum class JobState { Queued, Running, Done, Failed, Cancelled };

const char *jobStateName(JobState State);

/// How a submission attempt resolved, with the HTTP status to answer.
struct SubmitOutcome {
  int Status = 202;  ///< 202 accepted / 400 bad input / 429 / 503.
  std::string Id;    ///< Set on success.
  std::string Error; ///< Set on failure.
};

/// Runs exploration jobs and publishes their winners.
class JobManager {
public:
  /// \p Registry (optional) receives winning networks; \p Log (optional)
  /// gets `serve.jobs.*` counters; \p Store (optional) resolves "model"
  /// values that name uploaded models.
  JobManager(JobManagerOptions Options, ModelRegistry *Registry,
             RunLog *Log, const ModelStore *Store = nullptr);
  ~JobManager();

  JobManager(const JobManager &) = delete;
  JobManager &operator=(const JobManager &) = delete;

  /// Parses and enqueues one job from a flat-JSON request body. Required
  /// fields: "model" (Prototxt text, or the id of an uploaded model —
  /// checked first), "subspace", "meta", "objective" — each
  /// the corresponding Figure-2 text format. Optional: "composability"
  /// (bool, default true), "identifier" (bool, default true), "schedule"
  /// ("overlap"|"evalonly", default overlap), "workers" (int, default 2),
  /// "seed" (int), "dataset_scale" (float), "distill_alpha" (float),
  /// "strategy" ("fixed"|"greedy"|"adaptive", default fixed; the
  /// on-the-fly strategies take their rate alphabet from the subspace),
  /// "criterion" ("l1"|"l2"|"taylor"|"taylor_expansion"|"apoz", default
  /// l1), "max_rounds" (int in [1, 256], default 24), "accuracy_margin"
  /// (float in [0, 0.5], default 0.02). Unknown strategy or criterion
  /// names are answered 400 with the valid names listed — never a
  /// silent default.
  SubmitOutcome submit(const std::map<std::string, std::string> &Body);

  /// Renders one job as a JSON object (live counters for running jobs);
  /// error when the id is unknown.
  Result<std::string> statusJson(const std::string &Id) const;

  /// Renders `{"jobs":[...]}` with per-job summaries.
  std::string listJson() const;

  /// Cancels a job: queued jobs terminate immediately, running jobs at
  /// their next task boundary. Returns the post-cancel state name, or an
  /// error for unknown ids. Cancelling a finished job is a no-op that
  /// reports its terminal state.
  Result<std::string> cancel(const std::string &Id);

  /// Stops accepting new jobs and blocks until every accepted job has
  /// reached a terminal state. Does not stop the worker threads (the
  /// destructor does); callable once or many times.
  void drain();

  /// Aggregated live counters over every job's RunLog (cache.*, tasks_*):
  /// the /metrics feed.
  std::map<std::string, int64_t> jobCounters() const;

  /// Gauges for /metrics.
  size_t queuedCount() const;
  size_t runningCount() const;
  std::map<std::string, int64_t> stateCounts() const;

private:
  struct Job {
    std::string Id;
    JobState State = JobState::Queued;
    std::string Message; ///< Failure/cancel detail.

    // Parsed inputs.
    ModelSpec Spec;
    std::vector<PruneConfig> Subspace;
    TrainMeta Meta;
    PruningObjective Objective;
    bool UseComposability = true;
    bool UseIdentifier = true;
    PipelineSchedule Schedule = PipelineSchedule::Overlap;
    int PipelineWorkers = 2;
    float DistillAlpha = 0.0f;
    uint64_t Seed = 7;
    double DatasetScale = 0.25;
    StrategyKind Strategy = StrategyKind::Fixed;
    ImportanceCriterion Criterion = ImportanceCriterion::L1Norm;
    int MaxRounds = 24;
    double AccuracyMargin = 0.02;

    // Execution state.
    CancelToken Token;
    RunLog Log; ///< Live telemetry; sampled by status/metrics readers.
    double SubmitAt = 0.0, StartAt = 0.0, EndAt = 0.0;

    // Results.
    int ConfigsEvaluated = 0;
    int Rounds = 0;    ///< Strategy proposal rounds (non-fixed only).
    int Proposals = 0; ///< Strategy proposals (non-fixed only).
    int WinnerIndex = -1;
    double WinnerAccuracy = 0.0;
    double WinnerSizeFraction = 0.0;
    double FullAccuracy = 0.0;
    std::string ModelId; ///< Registered model id (empty if none).
  };

  void workerLoop();
  void runJob(Job &J);
  void finishJob(Job &J, JobState Terminal, std::string Message);
  std::string jobJsonLocked(const Job &J, bool WithCounters) const;

  JobManagerOptions Options;
  ModelRegistry *Registry = nullptr;
  RunLog *Log = nullptr;
  const ModelStore *Store = nullptr;
  RunLog Clock; ///< Timestamps only (now()).

  mutable std::mutex Mutex;
  std::condition_variable WorkReady;  ///< Wakes job workers.
  std::condition_variable JobSettled; ///< Signals drain().
  std::map<std::string, std::unique_ptr<Job>> Jobs;
  std::vector<std::string> Order; ///< Submission order, for listJson().
  std::deque<Job *> Queue;
  size_t Running = 0;
  uint64_t NextId = 1;
  bool Draining = false;
  bool Stopping = false;
  std::vector<std::thread> Workers;
};

} // namespace serve
} // namespace wootz

#endif // WOOTZ_SERVE_JOBMANAGER_H
