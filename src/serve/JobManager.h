//===- serve/JobManager.h - Prune-exploration job facade -------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The job half of the serve daemon, as the HTTP layer sees it. The
/// actual machinery lives one layer down — serve/JobQueue.h holds the
/// (optionally durable, multi-process) job table, serve/JobExecutor.h
/// the worker threads that claim and run jobs — and JobManager is the
/// thin facade that keeps the original single-daemon API: submit with
/// 202/400/429/503 semantics, status/list JSON with live counters,
/// cancel, drain, and the /metrics gauges.
///
/// With JobManagerOptions::QueueDir empty the behavior is bit-identical
/// to the pre-split manager: in-memory FIFO queue, "job-N" ids, same
/// messages, same JSON. With QueueDir set (normally
/// ArtifactStore::jobsDir()), jobs are journaled to disk and any daemon
/// sharing the directory can execute them — a job submitted here may
/// finish on another process, and vice versa.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SERVE_JOBMANAGER_H
#define WOOTZ_SERVE_JOBMANAGER_H

#include "src/serve/JobExecutor.h"
#include "src/serve/JobQueue.h"

#include <atomic>
#include <map>
#include <memory>
#include <string>

namespace wootz {
namespace serve {

class ArtifactStore;
class ModelStore;

/// Job-side knobs.
struct JobManagerOptions {
  /// Job executor threads — how many explorations run concurrently.
  /// 0 means one per hardware thread; negative is rejected (the daemon
  /// refuses to start, see JobManager::optionsError()).
  int Workers = 1;
  /// Queued-job cap; submissions beyond it are answered 429.
  size_t MaxQueuedJobs = 8;
  /// Cross-job tuning-block cache directory (empty disables).
  std::string BlockCacheDir;
  /// Size cap for the tuning-block cache (0 = unlimited).
  uint64_t BlockCacheMaxBytes = 0;
  /// Trained-full-model cache directory (empty disables).
  std::string CacheDir;
  /// When non-empty, each finished job writes telemetry.jsonl and
  /// result.json under "<ArtifactDir>/<job id>/" (the drain-time
  /// checkpoint persistence, in addition to the block cache's own
  /// as-trained publishing).
  std::string ArtifactDir;
  /// Per-class example multiplier of the synthetic dataset jobs train on.
  double DatasetScale = 0.25;
  /// Durable job-journal directory; empty keeps the queue in memory
  /// (the classic single-daemon mode).
  std::string QueueDir;
  /// Claim-lease TTL for durable queues.
  double LeaseSeconds = 30.0;
  /// Durable-mode poll/heartbeat period.
  double PollSeconds = 0.25;
  /// Executor identity for durable claims; empty generates one.
  std::string Owner;
  /// When false this daemon only submits and observes; peers sharing
  /// the queue directory execute.
  bool ExecuteJobs = true;
};

/// How a submission attempt resolved, with the HTTP status to answer.
struct SubmitOutcome {
  int Status = 202;  ///< 202 accepted / 400 bad input / 429 / 503.
  std::string Id;    ///< Set on success.
  std::string Error; ///< Set on failure.
};

/// Facade over JobQueue + JobExecutor preserving the original API.
class JobManager {
public:
  /// \p Registry (optional) receives winning networks; \p Log (optional)
  /// gets `serve.jobs.*` counters; \p Store (optional) resolves "model"
  /// values that name uploaded models; \p Artifacts (optional) gets its
  /// registration heartbeat from the executor's maintenance thread.
  JobManager(JobManagerOptions Options, ModelRegistry *Registry,
             RunLog *Log, const ModelStore *Store = nullptr,
             ArtifactStore *Artifacts = nullptr);
  ~JobManager();

  JobManager(const JobManager &) = delete;
  JobManager &operator=(const JobManager &) = delete;

  /// Non-empty when the options were invalid (negative Workers). The
  /// manager still constructs — degraded to one worker — but the server
  /// refuses to start, mirroring runtime worker validation.
  const std::string &optionsError() const { return OptionsError; }

  /// Parses and enqueues one job from a flat-JSON request body. Required
  /// fields: "model" (Prototxt text, or the id of an uploaded model —
  /// checked first), "subspace", "meta", "objective" — each
  /// the corresponding Figure-2 text format. Optional: "composability"
  /// (bool, default true), "identifier" (bool, default true), "schedule"
  /// ("overlap"|"evalonly", default overlap), "workers" (int, default 2),
  /// "seed" (int), "dataset_scale" (float), "distill_alpha" (float),
  /// "strategy" ("fixed"|"greedy"|"adaptive", default fixed; the
  /// on-the-fly strategies take their rate alphabet from the subspace),
  /// "criterion" ("l1"|"l2"|"taylor"|"taylor_expansion"|"apoz", default
  /// l1), "max_rounds" (int in [1, 256], default 24), "accuracy_margin"
  /// (float in [0, 0.5], default 0.02). Unknown strategy or criterion
  /// names are answered 400 with the valid names listed — never a
  /// silent default.
  SubmitOutcome submit(const std::map<std::string, std::string> &Body);

  /// Renders one job as a JSON object (live counters for running jobs);
  /// error when the id is unknown.
  Result<std::string> statusJson(const std::string &Id) const;

  /// Renders `{"jobs":[...]}` with per-job summaries.
  std::string listJson() const;

  /// Cancels a job: queued jobs terminate immediately, running jobs at
  /// their next task boundary (on whichever process runs them). Returns
  /// the post-cancel state name, or an error for unknown ids.
  /// Cancelling a finished job is a no-op that reports its terminal
  /// state.
  Result<std::string> cancel(const std::string &Id);

  /// Stops accepting new jobs and blocks until every known job has
  /// reached a terminal state. Does not stop the worker threads (the
  /// destructor does); callable once or many times.
  void drain();

  /// Aggregated live counters over every job's RunLog (cache.*, tasks_*):
  /// the /metrics feed.
  std::map<std::string, int64_t> jobCounters() const;

  /// Gauges for /metrics.
  size_t queuedCount() const;
  size_t runningCount() const;
  std::map<std::string, int64_t> stateCounts() const;

  // Direct access for tests.
  JobQueue &queue() { return Queue; }
  JobExecutor &executor() { return *Executor; }

private:
  std::string jobJson(const JobRecord &R, bool WithCounters) const;

  JobManagerOptions Options;
  RunLog *Log = nullptr;
  const ModelStore *Store = nullptr;
  std::string OptionsError;
  // Executor is declared after (so destroyed before) the queue it
  // consumes.
  JobQueue Queue;
  std::unique_ptr<JobExecutor> Executor;
  std::atomic<bool> Draining{false};
};

} // namespace serve
} // namespace wootz

#endif // WOOTZ_SERVE_JOBMANAGER_H
