//===- identifier/TuningBlock.cpp --------------------------------------------===//

#include "src/identifier/TuningBlock.h"

#include "src/support/StringUtils.h"

#include <algorithm>
#include <set>

using namespace wootz;

bool TuningBlock::isIdentity() const {
  for (float Rate : Rates)
    if (Rate != 0.0f)
      return false;
  return true;
}

std::string TuningBlock::id() const {
  std::string Out = "m" + std::to_string(FirstModule);
  if (moduleCount() > 1)
    Out += "-m" + std::to_string(lastModule());
  Out += '@';
  for (size_t I = 0; I < Rates.size(); ++I) {
    if (I != 0)
      Out += ',';
    Out += Rates[I] == 0.0f ? "0" : formatDouble(Rates[I], 1);
  }
  return Out;
}

bool TuningBlock::matchesConfigAt(const PruneConfig &Config) const {
  if (lastModule() >= static_cast<int>(Config.size()))
    return false;
  for (int I = 0; I < moduleCount(); ++I)
    if (Config[FirstModule + I] != Rates[I])
      return false;
  return true;
}

bool TuningBlock::operator<(const TuningBlock &Other) const {
  if (FirstModule != Other.FirstModule)
    return FirstModule < Other.FirstModule;
  if (Rates.size() != Other.Rates.size())
    return Rates.size() < Other.Rates.size();
  return Rates < Other.Rates;
}

std::vector<TuningBlock>
wootz::perModuleBlocks(const std::vector<PruneConfig> &Subspace) {
  std::set<TuningBlock> Blocks;
  for (const PruneConfig &Config : Subspace)
    for (size_t Module = 0; Module < Config.size(); ++Module) {
      if (Config[Module] == 0.0f)
        continue;
      TuningBlock Block;
      Block.FirstModule = static_cast<int>(Module);
      Block.Rates = {Config[Module]};
      Blocks.insert(std::move(Block));
    }
  return {Blocks.begin(), Blocks.end()};
}

std::vector<std::vector<TuningBlock>>
wootz::partitionIntoGroups(std::vector<TuningBlock> Blocks) {
  // "B.sort() — sort by the contained lowest conv layers" (§6.2).
  std::sort(Blocks.begin(), Blocks.end());
  std::vector<std::vector<TuningBlock>> Groups;
  for (TuningBlock &Block : Blocks) {
    bool Placed = false;
    for (std::vector<TuningBlock> &Group : Groups) {
      const bool Conflicts =
          std::any_of(Group.begin(), Group.end(),
                      [&](const TuningBlock &Member) {
                        return Member.overlaps(Block);
                      });
      if (!Conflicts) {
        Group.push_back(Block);
        Placed = true;
        break;
      }
    }
    if (!Placed)
      Groups.push_back({Block});
  }
  return Groups;
}
