//===- identifier/TuningBlock.h - Tuning block representation ---------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A *tuning block* (paper §5) is "a sequence of consecutive CNN layers
/// pruned at certain rates [...] taken as a unit for pre-training". With
/// per-module pruning rates, a block is a run of consecutive convolution
/// modules together with each module's rate. This header defines the
/// block value type plus two §6.2 utilities: the default
/// one-block-per-pruned-module set (the paper's "basic benefits"
/// experiments) and the partition of a block set into non-overlapping
/// groups for concurrent pre-training.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_IDENTIFIER_TUNINGBLOCK_H
#define WOOTZ_IDENTIFIER_TUNINGBLOCK_H

#include "src/pruning/PruneConfig.h"

#include <string>
#include <vector>

namespace wootz {

/// A run of consecutive modules with per-module pruning rates.
struct TuningBlock {
  int FirstModule = 0;
  /// One rate per module starting at FirstModule.
  std::vector<float> Rates;

  int moduleCount() const { return static_cast<int>(Rates.size()); }
  int lastModule() const { return FirstModule + moduleCount() - 1; }

  /// True when every module is unpruned; identity blocks reuse the full
  /// model's weights and need no pre-training.
  bool isIdentity() const;

  /// Canonical id, e.g. "m2-m3@0.5,0.3" (single-module: "m2@0.5").
  /// Used as the checkpoint key.
  std::string id() const;

  /// True if the two blocks share any module index.
  bool overlaps(const TuningBlock &Other) const {
    return FirstModule <= Other.lastModule() &&
           Other.FirstModule <= lastModule();
  }

  /// True if \p Config uses exactly this block's rates at its modules.
  bool matchesConfigAt(const PruneConfig &Config) const;

  bool operator==(const TuningBlock &Other) const {
    return FirstModule == Other.FirstModule && Rates == Other.Rates;
  }
  bool operator<(const TuningBlock &Other) const;
};

/// The default tuning-block set: every pruned (module, rate) pair that
/// occurs anywhere in \p Subspace, one block per pair. Identity (rate-0)
/// variants are omitted — they need no pre-training.
std::vector<TuningBlock>
perModuleBlocks(const std::vector<PruneConfig> &Subspace);

/// §6.2's partition algorithm: sorts blocks by their lowest module and
/// first-fits each block into a group with no overlapping member. Each
/// group can be pre-trained concurrently against one teacher execution.
std::vector<std::vector<TuningBlock>>
partitionIntoGroups(std::vector<TuningBlock> Blocks);

} // namespace wootz

#endif // WOOTZ_IDENTIFIER_TUNINGBLOCK_H
