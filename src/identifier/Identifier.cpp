//===- identifier/Identifier.cpp ----------------------------------------------===//

#include "src/identifier/Identifier.h"

#include "src/support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace wootz;

namespace {
/// Encodes/decodes (module, rate) pairs and per-network end markers as
/// Sequitur terminals.
class SymbolCoder {
public:
  SymbolCoder(int ModuleCount, std::vector<float> Rates)
      : ModuleCount(ModuleCount), Rates(std::move(Rates)) {}

  int rateIndex(float Rate) const {
    for (size_t I = 0; I < Rates.size(); ++I)
      if (Rates[I] == Rate)
        return static_cast<int>(I);
    reportFatalError("subspace uses a rate outside the rate alphabet");
  }

  int encode(int Module, float Rate) const {
    return Module * static_cast<int>(Rates.size()) + rateIndex(Rate);
  }

  int endMarker(int NetworkIndex) const {
    return ModuleCount * static_cast<int>(Rates.size()) + NetworkIndex;
  }

  bool isEndMarker(int Terminal) const {
    return Terminal >= ModuleCount * static_cast<int>(Rates.size());
  }

  int moduleOf(int Terminal) const {
    assert(!isEndMarker(Terminal) && "end markers carry no module");
    return Terminal / static_cast<int>(Rates.size());
  }

  float rateOf(int Terminal) const {
    assert(!isEndMarker(Terminal) && "end markers carry no rate");
    return Rates[Terminal % Rates.size()];
  }

  /// Figure 4 notation: "3(.5)" for module 3 at 50%, "#k" for markers.
  std::string name(int Terminal) const {
    if (isEndMarker(Terminal))
      return "#" + std::to_string(Terminal -
                                  ModuleCount *
                                      static_cast<int>(Rates.size()));
    const float Rate = rateOf(Terminal);
    std::string RateText =
        Rate == 0.0f ? "0" : formatDouble(Rate, 1).substr(1);
    return std::to_string(moduleOf(Terminal)) + "(" + RateText + ")";
  }

private:
  int ModuleCount;
  std::vector<float> Rates;
};
} // namespace

std::vector<std::vector<int>>
wootz::coverWithBlocks(const std::vector<PruneConfig> &Subspace,
                       const std::vector<TuningBlock> &Blocks) {
  std::vector<std::vector<int>> Vectors;
  Vectors.reserve(Subspace.size());
  for (const PruneConfig &Config : Subspace) {
    std::vector<int> Cover;
    int Module = 0;
    const int ModuleCount = static_cast<int>(Config.size());
    while (Module < ModuleCount) {
      // Longest block anchored at this module whose rates match.
      int Best = -1;
      int BestLength = 0;
      for (size_t I = 0; I < Blocks.size(); ++I) {
        const TuningBlock &Block = Blocks[I];
        if (Block.FirstModule != Module || !Block.matchesConfigAt(Config))
          continue;
        if (Block.moduleCount() > BestLength) {
          Best = static_cast<int>(I);
          BestLength = Block.moduleCount();
        }
      }
      if (Best < 0) {
        ++Module; // Uncovered module: falls back to inherited weights.
        continue;
      }
      Cover.push_back(Best);
      Module += BestLength;
    }
    Vectors.push_back(std::move(Cover));
  }
  return Vectors;
}

IdentifierResult
wootz::identifyTuningBlocks(int ModuleCount,
                            const std::vector<PruneConfig> &Subspace,
                            const std::vector<float> &Rates) {
  assert(!Subspace.empty() && "identifier requires a subspace");
  SymbolCoder Coder(ModuleCount, Rates);

  // Step 1-2: concatenate the networks and compress.
  Sequitur Compressor;
  for (size_t Network = 0; Network < Subspace.size(); ++Network) {
    const PruneConfig &Config = Subspace[Network];
    assert(static_cast<int>(Config.size()) == ModuleCount &&
           "subspace configs disagree with the module count");
    for (int Module = 0; Module < ModuleCount; ++Module)
      Compressor.append(Coder.encode(Module, Config[Module]));
    Compressor.append(Coder.endMarker(static_cast<int>(Network)));
  }

  IdentifierResult Result;
  Result.RuleGrammar = Compressor.grammar();
  const Grammar &G = Result.RuleGrammar;
  for (const GrammarRule &Rule : G.Rules)
    for (const GrammarSymbol &Symbol : Rule.Body)
      if (!Symbol.IsRule &&
          !Result.TerminalNames.count(Symbol.Value))
        Result.TerminalNames[Symbol.Value] = Coder.name(Symbol.Value);

  // Step 3: post-order walk with the two heuristics. Build the
  // children-before-parents order via a Kahn pass from the start rule.
  const size_t RuleCount = G.Rules.size();
  std::vector<std::set<int>> Children(RuleCount);
  std::vector<int> PendingParents(RuleCount, 0);
  for (const GrammarRule &Rule : G.Rules)
    for (const GrammarSymbol &Symbol : Rule.Body)
      if (Symbol.IsRule && Children[Rule.Id].insert(Symbol.Value).second)
        ++PendingParents[Symbol.Value];
  std::vector<int> TopoOrder;
  std::vector<int> Ready{0};
  while (!Ready.empty()) {
    const int Current = Ready.back();
    Ready.pop_back();
    TopoOrder.push_back(Current);
    for (int Child : Children[Current])
      if (--PendingParents[Child] == 0)
        Ready.push_back(Child);
  }
  assert(TopoOrder.size() == RuleCount && "grammar DAG must be acyclic");

  enum class Mark { Unmarked, Potential, DeadEnd };
  std::vector<Mark> Marks(RuleCount, Mark::Unmarked);
  for (auto It = TopoOrder.rbegin(); It != TopoOrder.rend(); ++It) {
    const int RuleId = *It;
    if (RuleId == 0) {
      Marks[RuleId] = Mark::DeadEnd; // The start rule appears once.
      continue;
    }
    // Heuristic 1: a rule appearing in only one network is worthless.
    if (G.Rules[RuleId].Frequency <= 1) {
      Marks[RuleId] = Mark::DeadEnd;
      continue;
    }
    long long ChildMax = 0;
    bool AnyChildDead = false;
    for (int Child : Children[RuleId]) {
      ChildMax = std::max(ChildMax, G.Rules[Child].Frequency);
      AnyChildDead = AnyChildDead || Marks[Child] == Mark::DeadEnd;
    }
    if (AnyChildDead) {
      Marks[RuleId] = Mark::DeadEnd;
      continue;
    }
    if (Children[RuleId].empty()) {
      Marks[RuleId] = Mark::Potential;
      continue;
    }
    // Heuristic 2: prefer the parent only when it appears as often as
    // its most frequent descendant.
    if (G.Rules[RuleId].Frequency == ChildMax) {
      Marks[RuleId] = Mark::Potential;
      for (int Child : Children[RuleId])
        if (Marks[Child] == Mark::Potential)
          Marks[Child] = Mark::Unmarked;
    } else {
      Marks[RuleId] = Mark::DeadEnd;
    }
  }

  // Step 4: marked rules become tuning blocks.
  std::set<TuningBlock> Unique;
  for (size_t RuleId = 0; RuleId < RuleCount; ++RuleId) {
    if (Marks[RuleId] != Mark::Potential)
      continue;
    const std::vector<int> Terminals =
        G.expand(static_cast<int>(RuleId));
    TuningBlock Block;
    bool Valid = !Terminals.empty();
    for (size_t I = 0; Valid && I < Terminals.size(); ++I) {
      if (Coder.isEndMarker(Terminals[I])) {
        Valid = false;
        break;
      }
      const int Module = Coder.moduleOf(Terminals[I]);
      if (I == 0)
        Block.FirstModule = Module;
      else if (Module != Block.FirstModule + static_cast<int>(I))
        Valid = false; // Crosses a network boundary.
      Block.Rates.push_back(Coder.rateOf(Terminals[I]));
    }
    if (Valid && !Block.isIdentity())
      Unique.insert(std::move(Block));
  }
  Result.Blocks.assign(Unique.begin(), Unique.end());
  Result.CompositeVectors = coverWithBlocks(Subspace, Result.Blocks);
  return Result;
}
