//===- identifier/Optimal.h - Exact tuning-block selection -------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper defines the *Optimal Tuning Block Definition Problem* (§5):
/// choose the block set B minimizing total pre-training time plus the
/// block-trained training times of all networks, proves it NP-hard, and
/// answers with the linear-time Sequitur heuristic. This header makes
/// the trade-off measurable: an explicit cost model over a block set and
/// an exhaustive exact minimizer for tiny instances, against which the
/// heuristic can be scored (tests and the identifier-optimality ablation
/// bench do exactly that).
///
/// Cost model (the paper computes T(.) by actually training; a closed
/// form keeps the exact search feasible and mirrors the empirical §5
/// observations — pre-training cost grows with block length, and a
/// network's training shrinks with how much of it is block-initialized):
///
///   cost(S) = Σ_{B in S} PretrainCostPerModule * |B|
///           + Σ_n FinetuneBaseCost * (1 - SavingFactor * covered(n, S))
///
/// where covered(n, S) is the fraction of network n's pruned modules
/// initialized by blocks of S under the runtime's greedy cover.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_IDENTIFIER_OPTIMAL_H
#define WOOTZ_IDENTIFIER_OPTIMAL_H

#include "src/identifier/TuningBlock.h"

namespace wootz {

/// Coefficients of the block-set cost model.
struct BlockCostModel {
  /// Pre-training cost per module contained in a block (each distinct
  /// block trains once).
  double PretrainCostPerModule = 1.0;
  /// Fine-tuning cost of one network with no block initialization.
  double FinetuneBaseCost = 4.0;
  /// Fraction of the fine-tuning cost a fully block-initialized network
  /// saves (the paper's §7.2 measurements put this at 1/3 to 1/2).
  double SavingFactor = 0.5;
};

/// Evaluates cost(S) for \p Blocks over \p Subspace.
double evaluateBlockSetCost(const std::vector<PruneConfig> &Subspace,
                            const std::vector<TuningBlock> &Blocks,
                            const BlockCostModel &Model = {});

/// Every distinct run of consecutive pruned modules occurring in
/// \p Subspace — the candidate pool of the exact search (condition 1 of
/// the paper's problem statement: every block is part of some network).
std::vector<TuningBlock>
enumerateCandidateBlocks(const std::vector<PruneConfig> &Subspace);

/// Result of the exact search.
struct OptimalBlocksResult {
  std::vector<TuningBlock> Blocks;
  double Cost = 0.0;
  int CandidateCount = 0;
  /// Subsets visited (2^candidates); reported so callers see the cost of
  /// exactness.
  size_t SubsetsSearched = 0;
};

/// Exhaustively minimizes cost(S) over all subsets of the candidate
/// pool. Fails when the pool exceeds \p MaxCandidates (the search is
/// exponential — the NP-hardness the paper proves is why the heuristic
/// exists).
Result<OptimalBlocksResult>
solveOptimalBlocks(const std::vector<PruneConfig> &Subspace,
                   const BlockCostModel &Model = {},
                   int MaxCandidates = 18);

} // namespace wootz

#endif // WOOTZ_IDENTIFIER_OPTIMAL_H
