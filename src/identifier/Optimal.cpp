//===- identifier/Optimal.cpp --------------------------------------------------===//

#include "src/identifier/Optimal.h"

#include "src/identifier/Identifier.h"

#include <set>

using namespace wootz;

double wootz::evaluateBlockSetCost(const std::vector<PruneConfig> &Subspace,
                                   const std::vector<TuningBlock> &Blocks,
                                   const BlockCostModel &Model) {
  double Cost = 0.0;
  for (const TuningBlock &Block : Blocks)
    Cost += Model.PretrainCostPerModule * Block.moduleCount();

  const std::vector<std::vector<int>> Covers =
      coverWithBlocks(Subspace, Blocks);
  for (size_t N = 0; N < Subspace.size(); ++N) {
    int PrunedModules = 0;
    for (float Rate : Subspace[N])
      PrunedModules += Rate != 0.0f;
    int CoveredModules = 0;
    for (int Index : Covers[N])
      for (int M = 0; M < Blocks[Index].moduleCount(); ++M)
        CoveredModules +=
            Blocks[Index].Rates[M] != 0.0f; // Identity spans save nothing.
    const double Covered =
        PrunedModules == 0
            ? 1.0
            : static_cast<double>(CoveredModules) / PrunedModules;
    Cost += Model.FinetuneBaseCost * (1.0 - Model.SavingFactor * Covered);
  }
  return Cost;
}

std::vector<TuningBlock>
wootz::enumerateCandidateBlocks(const std::vector<PruneConfig> &Subspace) {
  std::set<TuningBlock> Unique;
  for (const PruneConfig &Config : Subspace) {
    const int ModuleCount = static_cast<int>(Config.size());
    for (int First = 0; First < ModuleCount; ++First) {
      if (Config[First] == 0.0f)
        continue; // Blocks starting at an unpruned module save nothing.
      for (int Last = First; Last < ModuleCount; ++Last) {
        if (Config[Last] == 0.0f)
          break; // Keep candidates to fully-pruned runs.
        TuningBlock Block;
        Block.FirstModule = First;
        Block.Rates.assign(Config.begin() + First,
                           Config.begin() + Last + 1);
        Unique.insert(std::move(Block));
      }
    }
  }
  return {Unique.begin(), Unique.end()};
}

Result<OptimalBlocksResult>
wootz::solveOptimalBlocks(const std::vector<PruneConfig> &Subspace,
                          const BlockCostModel &Model, int MaxCandidates) {
  const std::vector<TuningBlock> Candidates =
      enumerateCandidateBlocks(Subspace);
  const int CandidateCount = static_cast<int>(Candidates.size());
  if (CandidateCount > MaxCandidates)
    return Error::failure(
        "exact search over " + std::to_string(CandidateCount) +
        " candidate blocks exceeds the limit of " +
        std::to_string(MaxCandidates) +
        " (the problem is NP-hard; use identifyTuningBlocks instead)");

  OptimalBlocksResult Out;
  Out.CandidateCount = CandidateCount;
  Out.Cost = evaluateBlockSetCost(Subspace, {}, Model);
  const size_t SubsetCount = size_t(1) << CandidateCount;
  Out.SubsetsSearched = SubsetCount;
  std::vector<TuningBlock> Subset;
  for (size_t Mask = 1; Mask < SubsetCount; ++Mask) {
    Subset.clear();
    for (int Bit = 0; Bit < CandidateCount; ++Bit)
      if (Mask & (size_t(1) << Bit))
        Subset.push_back(Candidates[Bit]);
    const double Cost = evaluateBlockSetCost(Subspace, Subset, Model);
    if (Cost < Out.Cost) {
      Out.Cost = Cost;
      Out.Blocks = Subset;
    }
  }
  return Out;
}
