//===- identifier/Identifier.h - Hierarchical tuning block identifier -------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §5 hierarchical compression-based algorithm. Choosing the
/// optimal tuning-block set is NP-hard, so Wootz:
///
///  1. encodes every network of the promising subspace as a string of
///     (module, rate) symbols and concatenates the strings with unique
///     end markers (Figure 4);
///  2. runs Sequitur to obtain a CFG whose rules are repeated layer
///     sequences, viewed as a DAG (multi-edges combined);
///  3. walks the DAG post-order applying two heuristics — a rule is kept
///     only if it appears in more than one place, and a rule is preferred
///     over its children only if it appears as often as its most frequent
///     descendant — marking potential tuning blocks and dead ends;
///  4. emits the marked rules as tuning blocks plus, per network, the
///     *composite vector* of blocks it can be assembled from.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_IDENTIFIER_IDENTIFIER_H
#define WOOTZ_IDENTIFIER_IDENTIFIER_H

#include "src/identifier/TuningBlock.h"
#include "src/sequitur/Sequitur.h"

#include <map>
#include <string>
#include <vector>

namespace wootz {

/// Output of the identifier.
struct IdentifierResult {
  /// The chosen tuning-block set S (pruned blocks only; identity blocks
  /// are dropped since they need no pre-training).
  std::vector<TuningBlock> Blocks;
  /// Per network of the subspace: indices into Blocks giving a
  /// non-overlapping cover of that network's pruned modules (greedy
  /// longest-match materialization of the paper's composite vectors).
  std::vector<std::vector<int>> CompositeVectors;
  /// The Sequitur grammar, for inspection (Figure 4 rendering).
  Grammar RuleGrammar;
  /// Human-readable names of the grammar terminals (e.g. "3(.5)" for
  /// module 3 pruned at 50%, matching Figure 4's notation).
  std::map<int, std::string> TerminalNames;
};

/// Runs the hierarchical identifier over \p Subspace (all configurations
/// must have \p ModuleCount rates drawn from \p Rates).
IdentifierResult
identifyTuningBlocks(int ModuleCount,
                     const std::vector<PruneConfig> &Subspace,
                     const std::vector<float> &Rates);

/// Computes composite vectors for \p Subspace against an externally
/// chosen block set (used by the per-module "basic benefits" mode):
/// greedy left-to-right longest match; uncovered pruned modules are
/// simply not block-initialized.
std::vector<std::vector<int>>
coverWithBlocks(const std::vector<PruneConfig> &Subspace,
                const std::vector<TuningBlock> &Blocks);

} // namespace wootz

#endif // WOOTZ_IDENTIFIER_IDENTIFIER_H
