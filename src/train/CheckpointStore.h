//===- train/CheckpointStore.h - Pre-trained block storage ---------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage for pre-trained tuning blocks — the stand-in for the paper's
/// TensorFlow checkpoints ("Executing the wrapper produces pre-trained
/// tuning blocks that are stored as TensorFlow checkpoints. The mapping
/// between the checkpoint files and trained tuning blocks are also
/// recorded for the model variable initialization in the global
/// fine-tuning phase", §6.2).
///
/// Bundles are keyed by the block's canonical id; tensor keys inside a
/// bundle are "<layer>/s<K>" (layer state index K), independent of any
/// particular graph prefix so a block trains in one graph and loads into
/// another. The store works purely in memory and can mirror itself to a
/// directory on disk: one atomic-renamed WOOTZCK2 file per bundle plus a
/// versioned JSON manifest ("MANIFEST.json", one object per line)
/// mapping keys to files. Legacy directories with the old TSV MANIFEST
/// are still readable.
///
/// The store is thread-safe: block groups pre-trained concurrently by the
/// runtime scheduler capture into one shared store, and fine-tune tasks
/// restore from it while later groups are still writing.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_TRAIN_CHECKPOINTSTORE_H
#define WOOTZ_TRAIN_CHECKPOINTSTORE_H

#include "src/nn/Graph.h"
#include "src/nn/Serialize.h"

#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace wootz {

/// How CheckpointStore::loadFrom treats the bundles already in memory.
enum class CheckpointLoadMode {
  /// Keep existing bundles; loaded keys overwrite same-named ones.
  Merge,
  /// Drop every in-memory bundle first, so the store ends up holding
  /// exactly what the directory held.
  Replace,
};

/// What one loadFrom() call actually did. Unreadable or corrupt entries
/// do not abort the load — they are skipped and reported here so the
/// caller can re-train exactly the missing blocks.
struct CheckpointLoadReport {
  int Loaded = 0;
  /// One "key: reason" diagnostic per entry that failed to load.
  std::vector<std::string> EntryErrors;
};

/// In-memory (optionally disk-backed) block checkpoint store.
class CheckpointStore {
public:
  /// Captures the state of \p Layers (spec-relative names) from
  /// \p Source's nodes "<Prefix>/<layer>" and stores it under \p Key.
  void capture(const std::string &Key, Graph &Source,
               const std::string &Prefix,
               const std::vector<std::string> &Layers);

  /// Stores \p Bundle directly under \p Key (what the block cache and
  /// the disk loader use; capture() is the graph-sourced equivalent).
  void insert(const std::string &Key, TensorBundle Bundle);

  /// Restores a stored bundle into \p Target's nodes "<Prefix>/<layer>".
  /// Missing target nodes are skipped; shape mismatches, malformed entry
  /// names, and out-of-range state indices are recoverable errors (a
  /// bundle loaded from a foreign or corrupt directory must never index
  /// out of bounds).
  Error restore(const std::string &Key, Graph &Target,
                const std::string &Prefix) const;

  bool contains(const std::string &Key) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Bundles.count(Key) != 0;
  }

  /// A copy of the bundle stored under \p Key.
  Result<TensorBundle> bundleCopy(const std::string &Key) const;

  /// Stored keys in lexicographic order.
  std::vector<std::string> keys() const;

  /// Writes every bundle to "<Directory>/<file name from
  /// checkpointFileName()>" (atomically, one temp+rename per file) plus
  /// a MANIFEST.json mapping keys to files.
  Error saveTo(const std::string &Directory) const;

  /// Loads the bundles listed in "<Directory>/MANIFEST.json" (or the
  /// legacy TSV "MANIFEST"). A failure Result means the manifest itself
  /// was unreadable; per-entry failures (missing, truncated, corrupt
  /// files) are accumulated in the report instead of aborting the load.
  Result<CheckpointLoadReport>
  loadFrom(const std::string &Directory,
           CheckpointLoadMode Mode = CheckpointLoadMode::Merge);

private:
  mutable std::mutex Mutex;
  std::map<std::string, TensorBundle> Bundles;
};

/// Filesystem-safe form of a checkpoint key: unsafe characters are
/// replaced, and a short hash of the *original* key is appended so keys
/// differing only in replaced characters (e.g. "b|a" vs "b:a") can never
/// collide on one file.
std::string sanitizeCheckpointKey(const std::string &Key);

/// The on-disk file name saveTo() uses for \p Key.
std::string checkpointFileName(const std::string &Key);

} // namespace wootz

#endif // WOOTZ_TRAIN_CHECKPOINTSTORE_H
