//===- train/CheckpointStore.h - Pre-trained block storage ---------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage for pre-trained tuning blocks — the stand-in for the paper's
/// TensorFlow checkpoints ("Executing the wrapper produces pre-trained
/// tuning blocks that are stored as TensorFlow checkpoints. The mapping
/// between the checkpoint files and trained tuning blocks are also
/// recorded for the model variable initialization in the global
/// fine-tuning phase", §6.2).
///
/// Bundles are keyed by the block's canonical id; tensor keys inside a
/// bundle are "<layer>/s<K>" (layer state index K), independent of any
/// particular graph prefix so a block trains in one graph and loads into
/// another. The store works purely in memory and can mirror itself to a
/// directory on disk.
///
/// The store is thread-safe: block groups pre-trained concurrently by the
/// runtime scheduler capture into one shared store, and fine-tune tasks
/// restore from it while later groups are still writing.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_TRAIN_CHECKPOINTSTORE_H
#define WOOTZ_TRAIN_CHECKPOINTSTORE_H

#include "src/nn/Graph.h"
#include "src/nn/Serialize.h"

#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace wootz {

/// In-memory (optionally disk-backed) block checkpoint store.
class CheckpointStore {
public:
  /// Captures the state of \p Layers (spec-relative names) from
  /// \p Source's nodes "<Prefix>/<layer>" and stores it under \p Key.
  void capture(const std::string &Key, Graph &Source,
               const std::string &Prefix,
               const std::vector<std::string> &Layers);

  /// Restores a stored bundle into \p Target's nodes "<Prefix>/<layer>".
  /// Missing target nodes are skipped; shape mismatches are fatal (they
  /// indicate the target was built for a different configuration).
  Error restore(const std::string &Key, Graph &Target,
                const std::string &Prefix) const;

  bool contains(const std::string &Key) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Bundles.count(Key) != 0;
  }

  /// Stored keys in lexicographic order.
  std::vector<std::string> keys() const;

  /// Writes every bundle to "<Directory>/<sanitized key>.ckpt" plus a
  /// MANIFEST mapping keys to files.
  Error saveTo(const std::string &Directory) const;

  /// Loads every bundle listed in "<Directory>/MANIFEST".
  Error loadFrom(const std::string &Directory);

private:
  mutable std::mutex Mutex;
  std::map<std::string, TensorBundle> Bundles;
};

/// Filesystem-safe form of a checkpoint key.
std::string sanitizeCheckpointKey(const std::string &Key);

} // namespace wootz

#endif // WOOTZ_TRAIN_CHECKPOINTSTORE_H
