//===- train/Trainer.h - Classifier training loop -----------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The supervised training loop used for the full-model preparation, the
/// baseline ("default network") training, and the global fine-tuning of
/// block-trained networks. Records the accuracy curve (the data behind
/// Figure 6) including the *initial* accuracy, the paper's init / init+
/// metric.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_TRAIN_TRAINER_H
#define WOOTZ_TRAIN_TRAINER_H

#include "src/compiler/Solver.h"
#include "src/data/Dataset.h"
#include "src/nn/Graph.h"

#include <string>
#include <vector>

namespace wootz {

/// One point of an accuracy-vs-steps curve.
struct AccuracyPoint {
  int Step = 0;
  double Accuracy = 0.0;
};

/// Outcome of a training run.
struct TrainResult {
  double InitialAccuracy = 0.0; ///< Test accuracy before any step.
  double FinalAccuracy = 0.0;   ///< Best test accuracy observed.
  std::vector<AccuracyPoint> Curve;
  double Seconds = 0.0; ///< Wall-clock training time.
  /// First step at which accuracy reached FinalAccuracy (convergence
  /// proxy used for the "reaches accuracy sooner" analyses).
  int StepsToBest = 0;
};

/// Test-set accuracy of \p Network's \p LogitsNode (evaluation mode).
double evaluateAccuracy(Graph &Network, const std::string &InputNode,
                        const std::string &LogitsNode, const Split &Test,
                        int BatchSize = 64);

/// Context-explicit variant: evaluates through \p Ctx, so several
/// threads can score one shared (read-only) \p Network concurrently,
/// each through a private context.
double evaluateAccuracy(const Graph &Network, ExecContext &Ctx,
                        const std::string &InputNode,
                        const std::string &LogitsNode, const Split &Test,
                        int BatchSize = 64);

/// Sharded variant: strides the test batches across \p Threads worker
/// threads over the one shared (read-only) \p Network, each scoring its
/// share through a private ExecContext. Batch boundaries are identical
/// to the serial loop's and each shard accumulates an integer correct
/// count, so the result is bit-identical to serial evaluation for any
/// thread count. TrainMeta::EvalThreads (`eval_threads`) selects the
/// shard count on the pipeline's evaluation paths.
double evaluateAccuracy(const Graph &Network, const std::string &InputNode,
                        const std::string &LogitsNode, const Split &Test,
                        int BatchSize, int Threads);

/// Trains \p Network with softmax cross-entropy on \p Data for \p Steps
/// steps at learning rate \p LearningRate, evaluating every
/// \p Meta.EvalEvery steps. Only the graph's trainable parameters move.
TrainResult trainClassifier(Graph &Network, const std::string &InputNode,
                            const std::string &LogitsNode,
                            const Dataset &Data, const TrainMeta &Meta,
                            int Steps, float LearningRate, Rng &Generator);

/// Like trainClassifier(), but the loss blends hard labels with
/// knowledge distillation from \p Teacher (the trained full model):
/// (1 - Alpha) * crossEntropy + Alpha * distillation at \p Temperature.
/// The whole-network Teacher-Student variant the paper's §8 cites; with
/// Alpha = 0 it degenerates to trainClassifier().
TrainResult trainClassifierDistilled(
    Graph &Student, const std::string &InputNode,
    const std::string &LogitsNode, Graph &Teacher,
    const std::string &TeacherInputNode,
    const std::string &TeacherLogitsNode, const Dataset &Data,
    const TrainMeta &Meta, int Steps, float LearningRate, float Alpha,
    float Temperature, Rng &Generator);

} // namespace wootz

#endif // WOOTZ_TRAIN_TRAINER_H
