//===- train/Assembly.cpp -------------------------------------------------------===//

#include "src/train/Assembly.h"

#include "src/pruning/Transfer.h"

using namespace wootz;

Result<AssembledNetwork> wootz::buildPrunedNetwork(
    const MultiplexingModel &Model, const PruneConfig &Config,
    Graph &FullTrained, const std::string &FullPrefix,
    const CheckpointStore *Store,
    const std::vector<TuningBlock> *CompositeBlocks, Rng &Generator,
    const FilterScores *Scores) {
  const ModelSpec &Spec = Model.spec();
  AssembledNetwork Out;
  PruneInfo Info;
  Info.Config = Config;
  Result<BuildResult> Built = Model.build(Out.Network, BuildMode::FineTune,
                                          Info, "net", Generator);
  if (!Built)
    return Built.takeError();
  Out.InputNode = Built->InputNode;
  Out.LogitsNode = Built->LogitsNode;

  // Baseline initialization: inherit the most important filters.
  const FilterSelections Selections =
      Scores ? selectionsFromScores(Spec, Config, *Scores)
             : selectFiltersByL1(Spec, Config, FullTrained, FullPrefix);
  transferWeights(Spec, Selections, FullTrained, FullPrefix, Out.Network,
                  "net");

  if (!Store || !CompositeBlocks)
    return Out;

  // Overlay the pre-trained tuning blocks listed in the composite
  // vector. Identity blocks carry no checkpoint: the inherited weights
  // already equal the full model's at unpruned modules.
  for (const TuningBlock &Block : *CompositeBlocks) {
    assert(Block.matchesConfigAt(Config) &&
           "composite vector block does not match the configuration");
    if (Block.isIdentity())
      continue;
    if (Error E = Store->restore(Block.id(), Out.Network, "net"))
      return std::move(E);
    Out.BlocksUsed.push_back(Block.id());
  }
  return Out;
}
