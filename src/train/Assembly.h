//===- train/Assembly.h - Assembling block-trained networks --------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The assembly step at the start of global fine-tuning (§6.1):
/// "Physically, this step just needs to initialize the pruned networks
/// in the promising subspace with the weights in the corresponding tuning
/// blocks." buildPrunedNetwork() materializes a pruned network for a
/// configuration, initializes it by l1 weight inheritance from the
/// trained full model (the baseline's "default network" init), and —
/// when a checkpoint store and composite vector are supplied — overlays
/// the pre-trained tuning blocks to produce the block-trained network.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_TRAIN_ASSEMBLY_H
#define WOOTZ_TRAIN_ASSEMBLY_H

#include "src/compiler/Multiplexing.h"
#include "src/pruning/Importance.h"
#include "src/train/CheckpointStore.h"

namespace wootz {

/// A pruned network ready for training or evaluation.
struct AssembledNetwork {
  Graph Network;
  std::string InputNode;
  std::string LogitsNode;
  /// Canonical ids of the tuning blocks that initialized it (empty for
  /// default networks).
  std::vector<std::string> BlocksUsed;
};

/// Builds the pruned network for \p Config under prefix "net".
///
/// \p FullTrained supplies the inherited weights (nodes
/// "<FullPrefix>/<layer>"). If \p Store and \p CompositeBlocks are
/// non-null, each listed block's checkpoint overwrites the corresponding
/// layers, producing a block-trained network; otherwise the result is the
/// baseline default network.
/// Inherited filters are ranked by \p Scores when given, by l1 norms
/// otherwise.
Result<AssembledNetwork> buildPrunedNetwork(
    const MultiplexingModel &Model, const PruneConfig &Config,
    Graph &FullTrained, const std::string &FullPrefix,
    const CheckpointStore *Store,
    const std::vector<TuningBlock> *CompositeBlocks, Rng &Generator,
    const FilterScores *Scores = nullptr);

} // namespace wootz

#endif // WOOTZ_TRAIN_ASSEMBLY_H
