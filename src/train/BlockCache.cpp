//===- train/BlockCache.cpp -----------------------------------------------------===//

#include "src/train/BlockCache.h"

#include "src/support/Hash.h"

#include <algorithm>
#include <filesystem>
#include <system_error>

using namespace wootz;

std::string BlockCache::entryPath(const std::string &BlockId) const {
  // The address is the full (block, teacher, hyperparameters) tuple: a
  // context change silently changes the file name, turning stale entries
  // into plain unused files rather than wrong hits.
  Fnv1a Address;
  Address.mix(BlockId)
      .mix(TeacherFingerprint)
      .mix(MetaHash);
  return Config.Directory + "/" + sanitizeCheckpointKey(BlockId) + "-" +
         toHex(Address.digest()) + ".ckpt";
}

void BlockCache::bump(const char *Counter,
                      int64_t BlockCacheStats::*Member) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Counters.*Member += 1;
  }
  if (Log)
    Log->bump(Counter);
}

void BlockCache::recordSpan(const std::string &Name, double StartAt) {
  if (!Log)
    return;
  SpanEvent Span;
  Span.Name = Name;
  Span.ReadyAt = StartAt;
  Span.StartAt = StartAt;
  Span.EndAt = Log->now();
  Log->record(std::move(Span));
}

bool BlockCache::fetch(const std::string &BlockId, CheckpointStore &Store) {
  if (!enabled())
    return false;
  const std::string Path = entryPath(BlockId);
  std::error_code FsError;
  if (!std::filesystem::exists(Path, FsError)) {
    bump("cache.miss", &BlockCacheStats::Misses);
    return false;
  }
  const double StartAt = Log ? Log->now() : 0.0;
  Result<TensorBundle> Bundle = loadTensors(Path);
  if (!Bundle) {
    // Detected corruption (truncation, CRC failure, bad sizes): move the
    // entry out of the address space so the re-trained replacement can
    // take its place, and keep the evidence for post-mortems.
    if (!Config.ReadOnly)
      std::filesystem::rename(Path, Path + ".corrupt", FsError);
    bump("cache.corrupt", &BlockCacheStats::Corrupt);
    bump("cache.miss", &BlockCacheStats::Misses);
    return false;
  }
  Store.insert(BlockId, Bundle.take());
  // Refresh the entry's LRU position: eviction is by mtime, and a hit
  // makes the entry recently used.
  std::filesystem::last_write_time(
      Path, std::filesystem::file_time_type::clock::now(), FsError);
  bump("cache.hit", &BlockCacheStats::Hits);
  recordSpan("cache.load:" + BlockId, StartAt);
  return true;
}

Error BlockCache::publish(const std::string &BlockId,
                          const CheckpointStore &Store) {
  if (!enabled() || Config.ReadOnly)
    return Error::success();
  Result<TensorBundle> Bundle = Store.bundleCopy(BlockId);
  if (!Bundle)
    return Bundle.takeError();
  std::error_code FsError;
  std::filesystem::create_directories(Config.Directory, FsError);
  if (FsError)
    return Error::failure("cannot create block cache directory '" +
                          Config.Directory + "'");
  const double StartAt = Log ? Log->now() : 0.0;
  const std::string Path = entryPath(BlockId);
  if (Error E = saveTensors(Path, *Bundle))
    return E;
  recordSpan("cache.save:" + BlockId, StartAt);
  if (Config.MaxBytes > 0)
    evictOverCap(Path);
  return Error::success();
}

void BlockCache::evictOverCap(const std::string &JustWritten) {
  // Scan-and-evict runs under the lock so concurrent publishers don't
  // double-delete; the file operations themselves tolerate races with
  // external processes (errors are ignored, the next insert re-scans).
  std::lock_guard<std::mutex> Lock(Mutex);
  struct EntryFile {
    std::filesystem::path Path;
    std::filesystem::file_time_type MTime;
    uint64_t Bytes = 0;
  };
  std::vector<EntryFile> Entries;
  uint64_t TotalBytes = 0;
  std::error_code FsError;
  for (const auto &DirEntry :
       std::filesystem::directory_iterator(Config.Directory, FsError)) {
    if (FsError)
      return;
    if (DirEntry.path().extension() != ".ckpt")
      continue;
    EntryFile Entry;
    Entry.Path = DirEntry.path();
    Entry.MTime = DirEntry.last_write_time(FsError);
    if (FsError)
      continue;
    Entry.Bytes = DirEntry.file_size(FsError);
    if (FsError)
      continue;
    TotalBytes += Entry.Bytes;
    Entries.push_back(std::move(Entry));
  }
  std::sort(Entries.begin(), Entries.end(),
            [](const EntryFile &A, const EntryFile &B) {
              return A.MTime < B.MTime;
            });
  for (const EntryFile &Entry : Entries) {
    if (TotalBytes <= Config.MaxBytes)
      break;
    // Never evict the entry that triggered the scan: an entry larger
    // than the whole cap would otherwise evict itself, and the cache
    // must at least hold the current run's newest block.
    if (Entry.Path.string() == JustWritten)
      continue;
    if (std::filesystem::remove(Entry.Path, FsError) && !FsError) {
      TotalBytes -= Entry.Bytes;
      Counters.Evicted += 1;
      if (Log)
        Log->bump("cache.evicted");
    }
  }
}

uint64_t BlockCache::fingerprintTeacher(Graph &Teacher) {
  Fnv1a Print;
  for (const auto &[Name, State] : Teacher.namedState()) {
    Print.mix(Name);
    const Tensor &Value = State->Value;
    for (int Axis = 0; Axis < Value.shape().rank(); ++Axis)
      Print.mix(static_cast<int64_t>(Value.shape()[Axis]));
    // Strided samples instead of every weight: the fingerprint runs once
    // per pipeline, but teachers can be large. Any training difference
    // perturbs essentially all weights, so samples catch it.
    const size_t Stride = Value.size() / 64 + 1;
    for (size_t I = 0; I < Value.size(); I += Stride)
      Print.mix(Value[I]);
  }
  return Print.digest();
}

uint64_t BlockCache::hashPretrainMeta(const TrainMeta &Meta) {
  return Fnv1a()
      .mix(Meta.PretrainSteps)
      .mix(Meta.PretrainLearningRate)
      .mix(Meta.BatchSize)
      .mix(Meta.Momentum)
      .mix(Meta.WeightDecay)
      .digest();
}
