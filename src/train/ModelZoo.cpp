//===- train/ModelZoo.cpp -------------------------------------------------------===//

#include "src/train/ModelZoo.h"

#include "src/nn/Serialize.h"
#include "src/support/StringUtils.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace wootz;

// The teacher checkpoint carries a sidecar with the generator state as it
// stood right after training. Restoring it on a cache hit keeps the
// caller's RNG stream position identical to the run that trained the
// teacher, so everything seeded downstream (pre-train groups, per-config
// fine-tunes) reproduces the cold run bit-for-bit. Without it a warm run
// silently drifts: the restore path skips training's draws.
static void saveRngSidecar(const std::string &CachePath, const Rng &Generator) {
  std::ostringstream Text;
  for (uint64_t Word : Generator.saveState())
    Text << Word << "\n";
  const std::string TmpPath = CachePath + ".rng.tmp";
  {
    std::ofstream Out(TmpPath, std::ios::trunc);
    if (!Out)
      return;
    Out << Text.str();
    if (!Out.flush())
      return;
  }
  std::error_code FsError;
  std::filesystem::rename(TmpPath, CachePath + ".rng", FsError);
}

static void restoreRngSidecar(const std::string &CachePath, Rng &Generator) {
  std::ifstream In(CachePath + ".rng");
  if (!In)
    return;
  std::vector<uint64_t> Words;
  uint64_t Word;
  while (In >> Word)
    Words.push_back(Word);
  // An invalid or truncated sidecar leaves the stream alone; the warm
  // run still works, it just cannot promise cold-run bit-exactness.
  (void)Generator.restoreState(Words);
}

Result<FullModel> wootz::prepareFullModel(const MultiplexingModel &Model,
                                          const Dataset &Data,
                                          const TrainMeta &Meta,
                                          const std::string &CacheDir,
                                          Rng &Generator) {
  FullModel Out;
  PruneInfo Info;
  Result<BuildResult> Built = Model.build(Out.Network, BuildMode::FullModel,
                                          Info, "full", Generator);
  if (!Built)
    return Built.takeError();
  Out.InputNode = Built->InputNode;
  Out.LogitsNode = Built->LogitsNode;

  std::string CachePath;
  if (!CacheDir.empty()) {
    // The key fingerprints the dataset contents so that regenerated or
    // retuned datasets never reuse stale weights.
    uint64_t Fingerprint = 0xcbf29ce484222325ull;
    auto mix = [&Fingerprint](uint64_t Value) {
      Fingerprint = (Fingerprint ^ Value) * 0x100000001b3ull;
    };
    mix(Data.Train.Images.size());
    mix(static_cast<uint64_t>(Data.Classes));
    const size_t Stride = Data.Train.Images.size() / 64 + 1;
    for (size_t I = 0; I < Data.Train.Images.size(); I += Stride) {
      uint32_t Bits;
      float Value = Data.Train.Images[I];
      static_assert(sizeof(Bits) == sizeof(Value));
      std::memcpy(&Bits, &Value, sizeof(Bits));
      mix(Bits);
    }
    CachePath = CacheDir + "/" + Model.spec().Name + "_" + Data.Name + "_" +
                std::to_string(Meta.FullModelSteps) + "_lr" +
                formatDouble(Meta.FullModelLearningRate, 4) + "_" +
                std::to_string(Fingerprint % 0xffffff) + ".ckpt";
    if (std::filesystem::exists(CachePath)) {
      Result<TensorBundle> Bundle = loadTensors(CachePath);
      if (!Bundle) {
        // A corrupt or truncated cache entry must not shadow the slot
        // forever: quarantine it (keeping the evidence) and retrain.
        std::error_code FsError;
        std::filesystem::rename(CachePath, CachePath + ".corrupt",
                                FsError);
      } else {
        bool Compatible = true;
        const std::map<std::string, Param *> State =
            Out.Network.namedState();
        for (const auto &[Name, Value] : *Bundle) {
          auto It = State.find(Name);
          if (It == State.end() ||
              It->second->Value.shape() != Value.shape()) {
            Compatible = false;
            break;
          }
          It->second->Value = Value;
        }
        if (Compatible) {
          Out.Accuracy =
              evaluateAccuracy(Out.Network, Out.InputNode, Out.LogitsNode,
                               Data.Test, 64, Meta.EvalThreads);
          Out.FromCache = true;
          restoreRngSidecar(CachePath, Generator);
          return Out;
        }
        // Stale cache (e.g. model shape changed): retrain below.
      }
    }
  }

  // The full model is trained to convergence (no early stopping): it is
  // the teacher and the accuracy reference for every threshold.
  TrainMeta FullMeta = Meta;
  FullMeta.EarlyStopPatience = 0;
  const TrainResult Trained = trainClassifier(
      Out.Network, Out.InputNode, Out.LogitsNode, Data, FullMeta,
      Meta.FullModelSteps, Meta.FullModelLearningRate, Generator);
  Out.TrainSeconds = Trained.Seconds;
  // Report the accuracy of the *final* weights (what a cache reload
  // would measure), not the best point along the curve.
  Out.Accuracy = evaluateAccuracy(Out.Network, Out.InputNode,
                                  Out.LogitsNode, Data.Test, 64,
                                  Meta.EvalThreads);

  if (!CachePath.empty()) {
    std::error_code FsError;
    std::filesystem::create_directories(CacheDir, FsError);
    TensorBundle Bundle;
    for (auto &[Name, State] : Out.Network.namedState())
      Bundle[Name] = State->Value;
    // A failed cache write is not fatal; the model is already trained.
    if (Error E = saveTensors(CachePath, Bundle))
      (void)static_cast<bool>(E);
    else
      saveRngSidecar(CachePath, Generator);
  }
  return Out;
}
