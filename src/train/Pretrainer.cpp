//===- train/Pretrainer.cpp -----------------------------------------------------===//

#include "src/train/Pretrainer.h"

#include "src/nn/Loss.h"
#include "src/nn/Optimizer.h"
#include "src/pruning/Transfer.h"
#include "src/support/Hash.h"
#include "src/support/Stopwatch.h"

using namespace wootz;

uint64_t wootz::pretrainGroupSeed(uint64_t BaseSeed,
                                  const std::vector<TuningBlock> &Group) {
  Fnv1a Digest;
  Digest.mix(BaseSeed);
  for (const TuningBlock &Block : Group)
    Digest.mix(Block.id());
  return Digest.digest();
}

Result<GroupPretrainStats> wootz::pretrainGroup(
    const MultiplexingModel &Model, Graph &FullTrained,
    const std::string &FullPrefix, const std::vector<TuningBlock> &Group,
    const Dataset &Data, const TrainMeta &Meta, CheckpointStore &Store,
    Rng &Generator, const FilterScores *Scores, BlockCache *Cache) {
  const ModelSpec &Spec = Model.spec();
  Stopwatch GroupTimer;
  GroupPretrainStats Stats;

  Graph Network;
  PruneInfo Info;
  Info.Blocks = Group;
  Result<BuildResult> Built =
      Model.build(Network, BuildMode::PreTrain, Info, "full", Generator);
  if (!Built)
    return Built.takeError();

  // Teacher weights come from the trained full model; each student
  // starts from its l1-inherited slice of the teacher.
  transferWeights(Spec, FilterSelections(), FullTrained, FullPrefix,
                  Network, "full");
  for (const BlockPort &Port : Built->Ports) {
    PruneConfig BlockConfig = unprunedConfig(Spec);
    for (int M = 0; M < Port.Block.moduleCount(); ++M)
      BlockConfig[Port.Block.FirstModule + M] = Port.Block.Rates[M];
    const FilterSelections Selections =
        Scores ? selectionsFromScores(Spec, BlockConfig, *Scores)
               : selectFiltersByL1(Spec, BlockConfig, FullTrained,
                                   FullPrefix);
    transferWeights(Spec, Selections, FullTrained, FullPrefix, Network,
                    Port.Prefix, &Port.Layers);
  }

  BatchSampler Sampler(Data.Train, Meta.BatchSize, Generator.fork());
  SgdOptimizer Optimizer(Meta.PretrainLearningRate, Meta.Momentum,
                         Meta.WeightDecay);
  const std::vector<Param *> Params = Network.trainableParams();
  // The group network is local to this call; one context carries the
  // shared teacher forward plus every student's pass, and its move-in
  // input path avoids copying the batch each step.
  ExecContext &Ctx = Network.defaultContext();
  Tensor GradOut;

  for (int Step = 1; Step <= Meta.PretrainSteps; ++Step) {
    Batch Mini = Sampler.next();
    Ctx.setInput(Built->InputNode, std::move(Mini.Images));
    Ctx.forward(Network, /*Training=*/true);
    Network.zeroGrads();
    double StepLoss = 0.0;
    for (const BlockPort &Port : Built->Ports) {
      StepLoss += l2Reconstruction(Ctx.activation(Port.StudentOut),
                                   Ctx.activation(Port.TeacherOut),
                                   GradOut);
      Ctx.seedGradient(Port.StudentOut, GradOut);
    }
    Ctx.backward(Network);
    Optimizer.step(Params);
    StepLoss /= static_cast<double>(Built->Ports.size());
    if (Step == 1)
      Stats.FirstLoss = StepLoss;
    if (Step == Meta.PretrainSteps)
      Stats.LastLoss = StepLoss;
  }

  for (const BlockPort &Port : Built->Ports) {
    Store.capture(Port.Block.id(), Network, Port.Prefix, Port.Layers);
    if (Cache) {
      // Cache publication failing (disk full, read-only mount) must not
      // fail the training run: the block is safely in the store.
      Error E = Cache->publish(Port.Block.id(), Store);
      (void)static_cast<bool>(E);
    }
  }
  Stats.Seconds = GroupTimer.seconds();
  return Stats;
}

Result<PretrainStats> wootz::pretrainBlocks(
    const MultiplexingModel &Model, Graph &FullTrained,
    const std::string &FullPrefix, const std::vector<TuningBlock> &Blocks,
    const Dataset &Data, const TrainMeta &Meta, CheckpointStore &Store,
    Rng &Generator, const FilterScores *Scores, RunLog *Log,
    BlockCache *Cache) {
  Stopwatch TotalTimer;
  PretrainStats Stats;

  // Drawn unconditionally so the caller's generator advances the same
  // whether every block trains, some load from the cache, or none are
  // pending — a warm run must reproduce the cold run's later draws.
  const uint64_t BaseSeed = Generator.next();

  // Identity blocks reuse the teacher's weights; already-stored blocks
  // are shared across calls (the cross-network reuse the paper banks
  // on); blocks found in the cross-run cache load from disk instead of
  // training.
  std::vector<TuningBlock> Pending;
  for (const TuningBlock &Block : Blocks) {
    if (Block.isIdentity() || Store.contains(Block.id()))
      continue;
    if (Cache && Cache->fetch(Block.id(), Store))
      continue;
    Pending.push_back(Block);
  }
  Stats.BlockCount = static_cast<int>(Pending.size());
  if (Pending.empty())
    return Stats;

  const std::vector<std::vector<TuningBlock>> Groups =
      partitionIntoGroups(std::move(Pending));
  Stats.GroupCount = static_cast<int>(Groups.size());

  for (size_t GroupIndex = 0; GroupIndex < Groups.size(); ++GroupIndex) {
    const double StartAt = Log ? Log->now() : 0.0;
    Rng GroupGen(pretrainGroupSeed(BaseSeed, Groups[GroupIndex]));
    Result<GroupPretrainStats> GroupStats =
        pretrainGroup(Model, FullTrained, FullPrefix, Groups[GroupIndex],
                      Data, Meta, Store, GroupGen, Scores, Cache);
    if (!GroupStats)
      return GroupStats.takeError();
    if (Log) {
      SpanEvent Span;
      Span.Name = "pretrain:g" + std::to_string(GroupIndex);
      Span.ReadyAt = StartAt;
      Span.StartAt = StartAt;
      Span.EndAt = Log->now();
      Log->record(std::move(Span));
    }
    Stats.FirstLoss += GroupStats->FirstLoss;
    Stats.LastLoss += GroupStats->LastLoss;
    Stats.GroupSeconds.push_back(GroupStats->Seconds);
  }
  Stats.FirstLoss /= Stats.GroupCount;
  Stats.LastLoss /= Stats.GroupCount;
  Stats.Seconds = TotalTimer.seconds();
  return Stats;
}
