//===- train/BlockCache.h - Cross-run pre-trained block cache ------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A crash-safe, content-addressed disk cache of pre-trained tuning
/// blocks. The paper's whole economic argument (§6.2) is that a tuning
/// block trains once and is reused by every configuration that contains
/// it; this cache extends that reuse *across runs*: a second exploration
/// over an overlapping subspace — or an Overlap-schedule run restarted
/// after a crash — skips pre-training for every block already on disk.
/// Iterative schemes that re-evaluate overlapping configurations
/// repeatedly (e.g. Molchanov et al.-style loops) amortize the same way.
///
/// Entries are addressed by the tuple (block id — which encodes the
/// module span and pruning rates —, teacher-model fingerprint, trainer
/// hyperparameter hash). The context fingerprints guarantee that a block
/// pre-trained against a different teacher or with different pre-training
/// hyperparameters can never be confused with the wanted one: the tuple
/// is hashed into the entry's file name, so a mismatch is simply a cache
/// miss. Note the deliberate asymmetry with CheckpointStore: the store
/// keys by block id alone (one run, one teacher), while the cache keys
/// by the full tuple (many runs, many teachers).
///
/// Crash safety: entries are WOOTZCK2 files (per-entry CRC32 + total
/// length) written via atomic temp+rename, so a reader sees either a
/// complete entry or none. Corrupt or truncated entries detected at load
/// are quarantined (renamed "<file>.corrupt"), counted, and treated as
/// misses — the pipeline re-trains instead of crashing.
///
/// Telemetry: when constructed with a RunLog, the cache bumps the
/// "cache.hit" / "cache.miss" / "cache.evicted" / "cache.corrupt"
/// counters and records one "cache.load:<id>" / "cache.save:<id>" span
/// per disk operation, so Table-3-style speedup runs can attribute the
/// time saved to reuse.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_TRAIN_BLOCKCACHE_H
#define WOOTZ_TRAIN_BLOCKCACHE_H

#include "src/compiler/Solver.h"
#include "src/runtime/RunLog.h"
#include "src/train/CheckpointStore.h"

#include <cstdint>
#include <mutex>
#include <string>

namespace wootz {

/// Knobs of the cross-run block cache.
struct CacheConfig {
  /// Cache directory; empty disables the cache entirely.
  std::string Directory;
  /// Total size cap in bytes over the directory's entries; when an
  /// insert pushes the total above the cap, the least-recently-used
  /// entries (by file mtime) are evicted. 0 means unlimited.
  uint64_t MaxBytes = 0;
  /// Serve hits but never write: no inserts, no eviction, and corrupt
  /// entries are reported but not quarantined. For sharing one cache
  /// directory between concurrent unprivileged readers.
  bool ReadOnly = false;
};

/// Counters of one BlockCache's lifetime (also mirrored into the RunLog
/// when one is attached).
struct BlockCacheStats {
  int64_t Hits = 0;
  int64_t Misses = 0;
  int64_t Evicted = 0;
  int64_t Corrupt = 0;
};

/// Content-addressed cross-run cache of pre-trained tuning blocks,
/// layered on top of CheckpointStore (memory) and the WOOTZCK2 format
/// (disk). Thread-safe: concurrent group-pretraining tasks publish and
/// fetch through one shared instance.
class BlockCache {
public:
  /// A disabled cache (every fetch misses, publishes are dropped).
  BlockCache() = default;

  explicit BlockCache(CacheConfig Config, RunLog *Log = nullptr)
      : Config(std::move(Config)), Log(Log) {}

  bool enabled() const { return !Config.Directory.empty(); }

  /// Binds the run context every entry key incorporates. Call once per
  /// run, after the teacher is trained and before any fetch/publish.
  void bindContext(uint64_t TeacherFingerprint, uint64_t MetaHash) {
    this->TeacherFingerprint = TeacherFingerprint;
    this->MetaHash = MetaHash;
  }

  /// A stable digest of the bound (teacher, hyperparameter) context —
  /// the part of every entry address that is not the block id. Two
  /// processes sharing a cache directory reuse each other's blocks
  /// exactly when their context ids match, which is what multi-process
  /// serving tests assert.
  uint64_t contextId() const {
    return TeacherFingerprint * 0x9e3779b97f4a7c15ull ^ MetaHash;
  }

  /// The on-disk path serving \p BlockId under the bound context.
  std::string entryPath(const std::string &BlockId) const;

  /// Tries to load \p BlockId from disk into \p Store (under the plain
  /// block id, ready for CheckpointStore::restore). Returns true on a
  /// hit. A corrupt entry is quarantined and counts as a miss.
  bool fetch(const std::string &BlockId, CheckpointStore &Store);

  /// Persists \p Store's bundle for \p BlockId to the cache, then
  /// applies the size cap. No-op success when disabled or read-only; a
  /// failed write is an Error (the trained block still lives in Store).
  Error publish(const std::string &BlockId, const CheckpointStore &Store);

  BlockCacheStats stats() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Counters;
  }

  /// Fingerprint of a trained teacher model: its state names, shapes,
  /// and strided samples of the weights. Two teachers that trained
  /// differently (or to different shapes) fingerprint differently.
  static uint64_t fingerprintTeacher(Graph &Teacher);

  /// Hash of the TrainMeta fields that affect what a pre-trained block
  /// contains (steps, learning rate, batch size, momentum, weight
  /// decay). Fields that only affect fine-tuning or scheduling are
  /// deliberately excluded so unrelated knob changes don't cold the
  /// cache.
  static uint64_t hashPretrainMeta(const TrainMeta &Meta);

private:
  void bump(const char *Counter, int64_t BlockCacheStats::*Member);
  void recordSpan(const std::string &Name, double StartAt);
  void evictOverCap(const std::string &JustWritten);

  CacheConfig Config;
  RunLog *Log = nullptr;
  uint64_t TeacherFingerprint = 0;
  uint64_t MetaHash = 0;
  mutable std::mutex Mutex;
  BlockCacheStats Counters;
};

} // namespace wootz

#endif // WOOTZ_TRAIN_BLOCKCACHE_H
