//===- train/ModelZoo.h - Trained full-model preparation -----------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CNN pruning starts from a full model that "has typically already been
/// trained beforehand to perform well on the datasets of interest"
/// (§6.1). prepareFullModel() trains the full network on the dataset
/// (the stand-in for ImageNet pre-training + dataset adaptation) and can
/// cache the trained weights on disk so the many bench binaries don't
/// retrain the same sixteen (model, dataset) pairs.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_TRAIN_MODELZOO_H
#define WOOTZ_TRAIN_MODELZOO_H

#include "src/compiler/Multiplexing.h"
#include "src/compiler/Solver.h"
#include "src/data/Dataset.h"
#include "src/train/Trainer.h"

namespace wootz {

/// A trained full model (nodes under prefix "full").
struct FullModel {
  Graph Network;
  std::string InputNode;
  std::string LogitsNode;
  double Accuracy = 0.0;
  double TrainSeconds = 0.0;
  bool FromCache = false;
};

/// Builds the full network for \p Model, trains it on \p Data for
/// \p Meta.FullModelSteps, and reports its test accuracy. When
/// \p CacheDir is non-empty, trained weights are loaded from / saved to
/// "<CacheDir>/<model>_<dataset>_<steps>.ckpt".
Result<FullModel> prepareFullModel(const MultiplexingModel &Model,
                                   const Dataset &Data,
                                   const TrainMeta &Meta,
                                   const std::string &CacheDir,
                                   Rng &Generator);

} // namespace wootz

#endif // WOOTZ_TRAIN_MODELZOO_H
