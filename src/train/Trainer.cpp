//===- train/Trainer.cpp -------------------------------------------------------===//

#include "src/train/Trainer.h"

#include "src/nn/Loss.h"
#include "src/nn/Optimizer.h"
#include "src/support/Stopwatch.h"

#include <algorithm>
#include <thread>

using namespace wootz;

double wootz::evaluateAccuracy(const Graph &Network, ExecContext &Ctx,
                               const std::string &InputNode,
                               const std::string &LogitsNode,
                               const Split &Test, int BatchSize) {
  const int Total = Test.exampleCount();
  assert(Total > 0 && "evaluating on an empty split");
  Ctx.bind(Network);
  int Correct = 0;
  std::vector<int> Indices;
  for (int Begin = 0; Begin < Total; Begin += BatchSize) {
    const int End = std::min(Begin + BatchSize, Total);
    Indices.clear();
    for (int I = Begin; I < End; ++I)
      Indices.push_back(I);
    Batch Eval = Test.gather(Indices);
    Ctx.setInput(InputNode, std::move(Eval.Images));
    Ctx.forward(Network, /*Training=*/false);
    const Tensor &Logits = Ctx.activation(LogitsNode);
    Correct += static_cast<int>(
        accuracyFromLogits(Logits, Eval.Labels) * Eval.Labels.size() + 0.5);
  }
  return static_cast<double>(Correct) / Total;
}

double wootz::evaluateAccuracy(Graph &Network, const std::string &InputNode,
                               const std::string &LogitsNode,
                               const Split &Test, int BatchSize) {
  return evaluateAccuracy(Network, Network.defaultContext(), InputNode,
                          LogitsNode, Test, BatchSize);
}

double wootz::evaluateAccuracy(const Graph &Network,
                               const std::string &InputNode,
                               const std::string &LogitsNode,
                               const Split &Test, int BatchSize,
                               int Threads) {
  const int Total = Test.exampleCount();
  assert(Total > 0 && "evaluating on an empty split");
  const int NumBatches = (Total + BatchSize - 1) / BatchSize;
  const int Shards = std::max(1, std::min(Threads, NumBatches));
  if (Shards == 1) {
    ExecContext Ctx(Network);
    return evaluateAccuracy(Network, Ctx, InputNode, LogitsNode, Test,
                            BatchSize);
  }

  // Each shard walks batches B, B + Shards, B + 2*Shards, ... with the
  // serial loop's exact batch boundaries and scores them through a
  // private context over the shared read-only model. Correct counts are
  // integers, so their sum is independent of thread interleaving.
  std::vector<int> Correct(static_cast<size_t>(Shards), 0);
  std::vector<std::thread> Workers;
  Workers.reserve(static_cast<size_t>(Shards));
  for (int S = 0; S < Shards; ++S)
    Workers.emplace_back([&, S] {
      ExecContext Ctx(Network);
      std::vector<int> Indices;
      for (int B = S; B < NumBatches; B += Shards) {
        const int Begin = B * BatchSize;
        const int End = std::min(Begin + BatchSize, Total);
        Indices.clear();
        for (int I = Begin; I < End; ++I)
          Indices.push_back(I);
        Batch Eval = Test.gather(Indices);
        Ctx.setInput(InputNode, std::move(Eval.Images));
        Ctx.forward(Network, /*Training=*/false);
        const Tensor &Logits = Ctx.activation(LogitsNode);
        Correct[static_cast<size_t>(S)] += static_cast<int>(
            accuracyFromLogits(Logits, Eval.Labels) * Eval.Labels.size() +
            0.5);
      }
    });
  for (std::thread &W : Workers)
    W.join();
  int Sum = 0;
  for (int C : Correct)
    Sum += C;
  return static_cast<double>(Sum) / Total;
}

TrainResult wootz::trainClassifierDistilled(
    Graph &Student, const std::string &InputNode,
    const std::string &LogitsNode, Graph &Teacher,
    const std::string &TeacherInputNode,
    const std::string &TeacherLogitsNode, const Dataset &Data,
    const TrainMeta &Meta, int Steps, float LearningRate, float Alpha,
    float Temperature, Rng &Generator) {
  assert(Alpha >= 0.0f && Alpha <= 1.0f && "distillation weight in [0,1]");
  Stopwatch Timer;
  TrainResult Result;
  Result.InitialAccuracy = evaluateAccuracy(
      Student, InputNode, LogitsNode, Data.Test, 64, Meta.EvalThreads);
  Result.Curve.push_back({0, Result.InitialAccuracy});
  Result.FinalAccuracy = Result.InitialAccuracy;

  BatchSampler Sampler(Data.Train, Meta.BatchSize, Generator.fork());
  SgdOptimizer Optimizer(LearningRate, Meta.Momentum, Meta.WeightDecay);
  const std::vector<Param *> Params = Student.trainableParams();
  // The student is exclusively ours, so its default context keeps the
  // hot loop's buffers. The teacher may be shared by several concurrent
  // fine-tunes (Pipeline Overlap), so its activations live in a private
  // context: only its read-only parameters are shared.
  ExecContext &StudentCtx = Student.defaultContext();
  ExecContext TeacherCtx(Teacher);
  Tensor GradHard;
  Tensor GradSoft;

  for (int Step = 1; Step <= Steps; ++Step) {
    if (Meta.LrDecayEvery > 0 && Step > 1 &&
        (Step - 1) % Meta.LrDecayEvery == 0)
      Optimizer.setLearningRate(Optimizer.learningRate() *
                                Meta.LrDecayFactor);
    Batch Mini = Sampler.next();
    // The teacher runs in evaluation mode: its soft targets must be
    // stable and its running statistics untouched. It copies the batch
    // (the student consumes it by move right after).
    TeacherCtx.setInput(TeacherInputNode, Mini.Images);
    TeacherCtx.forward(Teacher, /*Training=*/false);
    StudentCtx.setInput(InputNode, std::move(Mini.Images));
    StudentCtx.forward(Student, /*Training=*/true);

    Student.zeroGrads();
    const Tensor &StudentLogits = StudentCtx.activation(LogitsNode);
    softmaxCrossEntropy(StudentLogits, Mini.Labels, GradHard);
    distillationLoss(StudentLogits,
                     TeacherCtx.activation(TeacherLogitsNode), Temperature,
                     GradSoft);
    for (size_t I = 0; I < GradHard.size(); ++I)
      GradHard[I] = (1.0f - Alpha) * GradHard[I] + Alpha * GradSoft[I];
    StudentCtx.seedGradient(LogitsNode, GradHard);
    StudentCtx.backward(Student);
    Optimizer.step(Params);

    if (Step % Meta.EvalEvery == 0 || Step == Steps) {
      const double Accuracy = evaluateAccuracy(
          Student, InputNode, LogitsNode, Data.Test, 64, Meta.EvalThreads);
      Result.Curve.push_back({Step, Accuracy});
      if (Accuracy > Result.FinalAccuracy) {
        Result.FinalAccuracy = Accuracy;
        Result.StepsToBest = Step;
      } else if (Meta.EarlyStopPatience > 0 &&
                 Step - Result.StepsToBest >=
                     Meta.EarlyStopPatience * Meta.EvalEvery) {
        break;
      }
    }
  }
  Result.Seconds = Timer.seconds();
  return Result;
}

TrainResult wootz::trainClassifier(Graph &Network,
                                   const std::string &InputNode,
                                   const std::string &LogitsNode,
                                   const Dataset &Data,
                                   const TrainMeta &Meta, int Steps,
                                   float LearningRate, Rng &Generator) {
  Stopwatch Timer;
  TrainResult Result;
  Result.InitialAccuracy = evaluateAccuracy(
      Network, InputNode, LogitsNode, Data.Test, 64, Meta.EvalThreads);
  Result.Curve.push_back({0, Result.InitialAccuracy});
  Result.FinalAccuracy = Result.InitialAccuracy;
  Result.StepsToBest = 0;

  BatchSampler Sampler(Data.Train, Meta.BatchSize, Generator.fork());
  SgdOptimizer Optimizer(LearningRate, Meta.Momentum, Meta.WeightDecay);
  const std::vector<Param *> Params = Network.trainableParams();
  // The network is exclusively ours for the duration of the run; its
  // default context gives buffer reuse across steps plus move-in inputs.
  ExecContext &Ctx = Network.defaultContext();
  Tensor GradLogits;

  for (int Step = 1; Step <= Steps; ++Step) {
    if (Meta.LrDecayEvery > 0 && Step > 1 &&
        (Step - 1) % Meta.LrDecayEvery == 0)
      Optimizer.setLearningRate(Optimizer.learningRate() *
                                Meta.LrDecayFactor);
    Batch Mini = Sampler.next();
    Ctx.setInput(InputNode, std::move(Mini.Images));
    Ctx.forward(Network, /*Training=*/true);
    Network.zeroGrads();
    softmaxCrossEntropy(Ctx.activation(LogitsNode), Mini.Labels,
                        GradLogits);
    Ctx.seedGradient(LogitsNode, GradLogits);
    Ctx.backward(Network);
    Optimizer.step(Params);

    if (Step % Meta.EvalEvery == 0 || Step == Steps) {
      const double Accuracy = evaluateAccuracy(
          Network, InputNode, LogitsNode, Data.Test, 64, Meta.EvalThreads);
      Result.Curve.push_back({Step, Accuracy});
      if (Accuracy > Result.FinalAccuracy) {
        Result.FinalAccuracy = Accuracy;
        Result.StepsToBest = Step;
      } else if (Meta.EarlyStopPatience > 0 &&
                 Step - Result.StepsToBest >=
                     Meta.EarlyStopPatience * Meta.EvalEvery) {
        // No improvement for the whole patience window: the network has
        // converged (block-trained ones get here in fewer steps).
        break;
      }
    }
  }
  Result.Seconds = Timer.seconds();
  return Result;
}
