//===- train/Pretrainer.h - Teacher-Student block pre-training -----------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The local training phase of composability-based pruning (§6.1): each
/// pruned tuning block trains against the trained full model's activation
/// maps (min ||O - O'||^2), with only the block's parameters updated.
/// Blocks are partitioned into non-overlapping groups (§6.2) and each
/// group trains concurrently against one teacher execution per step —
/// the teacher's activations are computed once and reused by all blocks
/// of the group, exactly the reuse Figure 5(b) describes.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_TRAIN_PRETRAINER_H
#define WOOTZ_TRAIN_PRETRAINER_H

#include "src/compiler/NetsFactory.h"
#include "src/compiler/Solver.h"
#include "src/data/Dataset.h"
#include "src/pruning/Importance.h"
#include "src/runtime/RunLog.h"
#include "src/train/BlockCache.h"
#include "src/train/CheckpointStore.h"

namespace wootz {

/// Cost accounting of a pre-training run.
struct PretrainStats {
  int BlockCount = 0;
  int GroupCount = 0;
  double Seconds = 0.0; ///< Total wall-clock pre-training time.
  /// Wall-clock seconds per group, for the multi-node schedule
  /// simulation (groups are distributed round-robin over nodes).
  std::vector<double> GroupSeconds;
  /// Mean reconstruction loss per block at the first and last step, for
  /// verifying the blocks actually learned.
  double FirstLoss = 0.0;
  double LastLoss = 0.0;
};

/// Per-group cost and loss accounting from pretrainGroup().
struct GroupPretrainStats {
  double Seconds = 0.0;
  /// Mean reconstruction loss over the group's blocks at the first and
  /// last training step.
  double FirstLoss = 0.0;
  double LastLoss = 0.0;
};

/// Pre-trains one non-overlapping block group against the teacher
/// \p FullTrained (nodes "<FullPrefix>/...") and captures each trained
/// block into \p Store under its canonical id. This is the unit the
/// runtime scheduler dispatches: groups only read the teacher and only
/// write distinct store keys, so distinct groups may train concurrently
/// (each with its own \p Generator). The caller is responsible for
/// filtering out identity and already-stored blocks. When \p Cache is
/// given, each freshly trained block is also published to the cross-run
/// cache (publish failures are non-fatal — the block lives in \p Store
/// regardless).
Result<GroupPretrainStats>
pretrainGroup(const MultiplexingModel &Model, Graph &FullTrained,
              const std::string &FullPrefix,
              const std::vector<TuningBlock> &Group, const Dataset &Data,
              const TrainMeta &Meta, CheckpointStore &Store,
              Rng &Generator, const FilterScores *Scores = nullptr,
              BlockCache *Cache = nullptr);

/// Derives the training seed of one block group from a base draw: a
/// hash of \p BaseSeed and the group's block ids. Because the seed
/// depends only on the group's contents (not on how many other groups
/// train, or trained before it), a group produces bit-identical weights
/// whether the surrounding run is cold, warm, or resumed mid-way with
/// some groups already cached.
uint64_t pretrainGroupSeed(uint64_t BaseSeed,
                           const std::vector<TuningBlock> &Group);

/// Pre-trains \p Blocks with \p FullTrained (nodes "<FullPrefix>/...")
/// as the teacher and stores each trained block in \p Store under its
/// canonical id. Identity blocks are skipped (they reuse the teacher's
/// weights directly). Blocks are initialized by weight inheritance
/// before training — ranked by \p Scores when given, by l1 norms
/// otherwise. Groups run serially, in partition order; exactly one
/// value is drawn from \p Generator (cached or empty pending sets draw
/// the same), and each group trains on its own pretrainGroupSeed()
/// stream, so skipping blocks never shifts the caller's later draws.
/// When \p Log is given each group is recorded as a "pretrain:g<index>"
/// span. When \p Cache is given, blocks already in the cross-run cache
/// are fetched instead of trained (they do not count toward
/// BlockCount), and freshly trained blocks are published back.
Result<PretrainStats>
pretrainBlocks(const MultiplexingModel &Model, Graph &FullTrained,
               const std::string &FullPrefix,
               const std::vector<TuningBlock> &Blocks, const Dataset &Data,
               const TrainMeta &Meta, CheckpointStore &Store,
               Rng &Generator, const FilterScores *Scores = nullptr,
               RunLog *Log = nullptr, BlockCache *Cache = nullptr);

} // namespace wootz

#endif // WOOTZ_TRAIN_PRETRAINER_H
