//===- train/CheckpointStore.cpp -----------------------------------------------===//

#include "src/train/CheckpointStore.h"

#include "src/support/StringUtils.h"

#include <filesystem>
#include <fstream>

using namespace wootz;

std::string wootz::sanitizeCheckpointKey(const std::string &Key) {
  std::string Out;
  for (char C : Key) {
    const bool Safe = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                      (C >= '0' && C <= '9') || C == '-' || C == '_' ||
                      C == '.';
    Out += Safe ? C : '_';
  }
  return Out;
}

void CheckpointStore::capture(const std::string &Key, Graph &Source,
                              const std::string &Prefix,
                              const std::vector<std::string> &Layers) {
  TensorBundle Bundle;
  for (const std::string &LayerName : Layers) {
    Layer &L = Source.layer(Prefix + "/" + LayerName);
    const std::vector<Param *> State = L.state();
    for (size_t K = 0; K < State.size(); ++K)
      Bundle[LayerName + "/s" + std::to_string(K)] = State[K]->Value;
  }
  std::lock_guard<std::mutex> Lock(Mutex);
  Bundles[Key] = std::move(Bundle);
}

Error CheckpointStore::restore(const std::string &Key, Graph &Target,
                               const std::string &Prefix) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Bundles.find(Key);
  if (It == Bundles.end())
    return Error::failure("no checkpoint stored under key '" + Key + "'");
  for (const auto &[EntryName, Value] : It->second) {
    const size_t Slash = EntryName.rfind("/s");
    assert(Slash != std::string::npos && "malformed checkpoint entry");
    const std::string LayerName = EntryName.substr(0, Slash);
    Result<long long> StateIndex = parseInteger(EntryName.substr(Slash + 2));
    assert(StateIndex && "malformed checkpoint state index");
    const std::string NodeName = Prefix + "/" + LayerName;
    if (!Target.hasNode(NodeName))
      continue;
    Param *State = Target.layer(NodeName).state()[*StateIndex];
    if (State->Value.shape() != Value.shape())
      return Error::failure("checkpoint '" + Key + "' entry '" + EntryName +
                            "' has shape " + Value.shape().str() +
                            " but the target expects " +
                            State->Value.shape().str());
    State->Value = Value;
  }
  return Error::success();
}

std::vector<std::string> CheckpointStore::keys() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<std::string> Out;
  Out.reserve(Bundles.size());
  for (const auto &[Key, Bundle] : Bundles)
    Out.push_back(Key);
  return Out;
}

Error CheckpointStore::saveTo(const std::string &Directory) const {
  std::error_code FsError;
  std::filesystem::create_directories(Directory, FsError);
  if (FsError)
    return Error::failure("cannot create checkpoint directory '" +
                          Directory + "'");
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Manifest;
  for (const auto &[Key, Bundle] : Bundles) {
    const std::string FileName = sanitizeCheckpointKey(Key) + ".ckpt";
    if (Error E = saveTensors(Directory + "/" + FileName, Bundle))
      return E;
    Manifest += Key + "\t" + FileName + "\n";
  }
  std::ofstream Stream(Directory + "/MANIFEST", std::ios::trunc);
  if (!Stream)
    return Error::failure("cannot write checkpoint manifest");
  Stream << Manifest;
  return Error::success();
}

Error CheckpointStore::loadFrom(const std::string &Directory) {
  std::ifstream Stream(Directory + "/MANIFEST");
  if (!Stream)
    return Error::failure("cannot read manifest in '" + Directory + "'");
  std::string Line;
  while (std::getline(Stream, Line)) {
    if (trim(Line).empty())
      continue;
    const size_t Tab = Line.find('\t');
    if (Tab == std::string::npos)
      return Error::failure("malformed manifest line '" + Line + "'");
    const std::string Key = Line.substr(0, Tab);
    Result<TensorBundle> Bundle =
        loadTensors(Directory + "/" + Line.substr(Tab + 1));
    if (!Bundle)
      return Bundle.takeError();
    std::lock_guard<std::mutex> Lock(Mutex);
    Bundles[Key] = Bundle.take();
  }
  return Error::success();
}
