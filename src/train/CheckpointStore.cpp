//===- train/CheckpointStore.cpp -----------------------------------------------===//

#include "src/train/CheckpointStore.h"

#include "src/support/File.h"
#include "src/support/Hash.h"
#include "src/support/Json.h"
#include "src/support/StringUtils.h"

#include <filesystem>
#include <fstream>

using namespace wootz;

/// Manifest version written by saveTo(). Version 1 was the bare TSV
/// "MANIFEST" file; version 2 is JSONL with a typed header line.
static constexpr int ManifestVersion = 2;

std::string wootz::sanitizeCheckpointKey(const std::string &Key) {
  std::string Out;
  for (char C : Key) {
    const bool Safe = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                      (C >= '0' && C <= '9') || C == '-' || C == '_' ||
                      C == '.';
    Out += Safe ? C : '_';
  }
  // The replacement above is lossy ("b|a" and "b:a" both become "b_a"),
  // so distinct keys could silently overwrite each other's files. A
  // short hash of the original key disambiguates them.
  Out += "-" + toHex(fnv1a(Key), 8);
  return Out;
}

std::string wootz::checkpointFileName(const std::string &Key) {
  return sanitizeCheckpointKey(Key) + ".ckpt";
}

void CheckpointStore::capture(const std::string &Key, Graph &Source,
                              const std::string &Prefix,
                              const std::vector<std::string> &Layers) {
  TensorBundle Bundle;
  for (const std::string &LayerName : Layers) {
    Layer &L = Source.layer(Prefix + "/" + LayerName);
    const std::vector<Param *> State = L.state();
    for (size_t K = 0; K < State.size(); ++K)
      Bundle[LayerName + "/s" + std::to_string(K)] = State[K]->Value;
  }
  insert(Key, std::move(Bundle));
}

void CheckpointStore::insert(const std::string &Key, TensorBundle Bundle) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Bundles[Key] = std::move(Bundle);
}

Error CheckpointStore::restore(const std::string &Key, Graph &Target,
                               const std::string &Prefix) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Bundles.find(Key);
  if (It == Bundles.end())
    return Error::failure("no checkpoint stored under key '" + Key + "'");
  for (const auto &[EntryName, Value] : It->second) {
    // Entry names come from disk as well as from capture(), so malformed
    // ones must be recoverable errors, not assertions that compile out.
    const size_t Slash = EntryName.rfind("/s");
    if (Slash == std::string::npos)
      return Error::failure("checkpoint '" + Key +
                            "' has a malformed entry name '" + EntryName +
                            "' (expected '<layer>/s<index>')");
    const std::string LayerName = EntryName.substr(0, Slash);
    Result<long long> StateIndex = parseInteger(EntryName.substr(Slash + 2));
    if (!StateIndex || *StateIndex < 0)
      return Error::failure("checkpoint '" + Key + "' entry '" +
                            EntryName +
                            "' has a malformed state index");
    const std::string NodeName = Prefix + "/" + LayerName;
    if (!Target.hasNode(NodeName))
      continue;
    const std::vector<Param *> State = Target.layer(NodeName).state();
    if (static_cast<size_t>(*StateIndex) >= State.size())
      return Error::failure(
          "checkpoint '" + Key + "' entry '" + EntryName +
          "' indexes state tensor " + std::to_string(*StateIndex) +
          " but layer '" + NodeName + "' only has " +
          std::to_string(State.size()));
    Param *Slot = State[*StateIndex];
    if (Slot->Value.shape() != Value.shape())
      return Error::failure("checkpoint '" + Key + "' entry '" + EntryName +
                            "' has shape " + Value.shape().str() +
                            " but the target expects " +
                            Slot->Value.shape().str());
    Slot->Value = Value;
  }
  return Error::success();
}

Result<TensorBundle>
CheckpointStore::bundleCopy(const std::string &Key) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Bundles.find(Key);
  if (It == Bundles.end())
    return Error::failure("no checkpoint stored under key '" + Key + "'");
  return It->second;
}

std::vector<std::string> CheckpointStore::keys() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<std::string> Out;
  Out.reserve(Bundles.size());
  for (const auto &[Key, Bundle] : Bundles)
    Out.push_back(Key);
  return Out;
}

Error CheckpointStore::saveTo(const std::string &Directory) const {
  std::error_code FsError;
  std::filesystem::create_directories(Directory, FsError);
  if (FsError)
    return Error::failure("cannot create checkpoint directory '" +
                          Directory + "'");
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Manifest;
  Manifest += JsonObject()
                  .field("type", "wootz-checkpoint-manifest")
                  .field("version", ManifestVersion)
                  .field("entries", Bundles.size())
                  .str() +
              "\n";
  for (const auto &[Key, Bundle] : Bundles) {
    const std::string FileName = checkpointFileName(Key);
    if (Error E = saveTensors(Directory + "/" + FileName, Bundle))
      return E;
    Manifest +=
        JsonObject().field("key", Key).field("file", FileName).str() +
        "\n";
  }
  // The manifest is renamed into place last, so a crash mid-save leaves
  // either the previous manifest (pointing at still-valid files) or the
  // complete new one — never a manifest referencing half-written files.
  return writeFileAtomic(Directory + "/MANIFEST.json", Manifest);
}

/// Parses the versioned JSONL manifest into key -> file-name pairs.
static Result<std::vector<std::pair<std::string, std::string>>>
parseJsonManifest(const std::string &Text) {
  std::vector<std::pair<std::string, std::string>> Entries;
  bool SawHeader = false;
  for (const std::string &Line : splitLines(Text)) {
    if (trim(Line).empty())
      continue;
    Result<std::map<std::string, std::string>> Object =
        parseFlatJsonObject(Line);
    if (!Object)
      return Error::failure("malformed manifest line '" + Line +
                            "': " + Object.message());
    if (!SawHeader) {
      auto Type = Object->find("type");
      auto Version = Object->find("version");
      if (Type == Object->end() ||
          Type->second != "wootz-checkpoint-manifest" ||
          Version == Object->end())
        return Error::failure(
            "manifest does not start with a wootz-checkpoint-manifest "
            "header");
      Result<long long> Parsed = parseInteger(Version->second);
      if (!Parsed || *Parsed < 1 || *Parsed > ManifestVersion)
        return Error::failure("unsupported manifest version '" +
                              Version->second + "'");
      SawHeader = true;
      continue;
    }
    auto Key = Object->find("key");
    auto File = Object->find("file");
    if (Key == Object->end() || File == Object->end())
      return Error::failure("manifest line '" + Line +
                            "' lacks key/file fields");
    Entries.emplace_back(Key->second, File->second);
  }
  if (!SawHeader)
    return Error::failure("manifest has no header line");
  return Entries;
}

/// Parses the legacy bare-TSV MANIFEST (version 1 directories).
static Result<std::vector<std::pair<std::string, std::string>>>
parseTsvManifest(const std::string &Text) {
  std::vector<std::pair<std::string, std::string>> Entries;
  for (const std::string &Line : splitLines(Text)) {
    if (trim(Line).empty())
      continue;
    const size_t Tab = Line.find('\t');
    if (Tab == std::string::npos)
      return Error::failure("malformed manifest line '" + Line + "'");
    Entries.emplace_back(Line.substr(0, Tab), Line.substr(Tab + 1));
  }
  return Entries;
}

Result<CheckpointLoadReport>
CheckpointStore::loadFrom(const std::string &Directory,
                          CheckpointLoadMode Mode) {
  using ManifestEntries = std::vector<std::pair<std::string, std::string>>;
  Result<ManifestEntries> Entries = [&]() -> Result<ManifestEntries> {
    Result<std::string> Json = readFile(Directory + "/MANIFEST.json");
    if (Json)
      return parseJsonManifest(*Json);
    Result<std::string> Tsv = readFile(Directory + "/MANIFEST");
    if (Tsv)
      return parseTsvManifest(*Tsv);
    return Error::failure(
        "cannot read a manifest (MANIFEST.json or MANIFEST) in '" +
        Directory + "'");
  }();
  if (!Entries)
    return Entries.takeError();

  if (Mode == CheckpointLoadMode::Replace) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Bundles.clear();
  }

  // One bad file must not shadow the good entries behind it: record the
  // failure, move on, and let the caller re-train just the missing keys.
  CheckpointLoadReport Report;
  for (const auto &[Key, FileName] : *Entries) {
    Result<TensorBundle> Bundle = loadTensors(Directory + "/" + FileName);
    if (!Bundle) {
      Report.EntryErrors.push_back(Key + ": " + Bundle.message());
      continue;
    }
    insert(Key, Bundle.take());
    ++Report.Loaded;
  }
  return Report;
}
