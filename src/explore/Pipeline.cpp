//===- explore/Pipeline.cpp -----------------------------------------------------===//

#include "src/explore/Pipeline.h"

#include "src/explore/Engine.h"
#include "src/identifier/Identifier.h"
#include "src/identifier/TuningBlock.h"
#include "src/runtime/TaskGraph.h"

#include <algorithm>
#include <map>
#include <set>
#include <thread>

using namespace wootz;

Result<PipelineResult> wootz::runPruningPipeline(
    const ModelSpec &Spec, const Dataset &Data,
    std::vector<PruneConfig> Subspace, const TrainMeta &Meta,
    const PipelineOptions &Options, Rng &Generator) {
  if (Subspace.empty())
    return Error::failure("the promising subspace is empty");
  if (Options.Workers < 0)
    return Error::failure("PipelineOptions::Workers must be non-negative "
                          "(0 means one per hardware thread), got " +
                          std::to_string(Options.Workers));
  const unsigned Workers =
      Options.Workers == 0
          ? std::max(1u, std::thread::hardware_concurrency())
          : static_cast<unsigned>(Options.Workers);
  const bool Overlap = Options.Schedule == PipelineSchedule::Overlap;
  // Distillation composes with every schedule: concurrent fine-tunes
  // share only the teacher's read-only parameters — each one forwards
  // the teacher through a private ExecContext (see trainClassifier-
  // Distilled), so there is no shared activation state to race on.

  PipelineResult Run;
  // Phase 0 — trained full model, filter scores, block-cache binding —
  // lives in the engine, shared with the strategy driver
  // (runStrategyExploration).
  ExplorationEngine Engine(Spec, Data, Meta, Options);
  RunLog &Log = Engine.log();
  auto cancelRequested = [&Engine] { return Engine.cancelRequested(); };
  if (Error E = Engine.prepare(Run, Generator))
    return E;

  // Exploration order: ascending model size (min-ModelSize objective).
  std::sort(Subspace.begin(), Subspace.end(),
            [&](const PruneConfig &A, const PruneConfig &B) {
              return modelWeightCount(Spec, A) < modelWeightCount(Spec, B);
            });

  // Phase 1 (composability only): choose tuning blocks. With the
  // EvalOnly schedule the blocks pre-train right here, serially; with
  // Overlap they become tasks on the same graph as the evaluations.
  CheckpointStore &Store = Engine.store();
  BlockCache &Cache = Engine.blockCache();
  std::vector<std::vector<int>> CompositeVectors;
  if (Options.UseComposability) {
    if (Options.UseIdentifier) {
      IdentifierResult Identified = identifyTuningBlocks(
          Spec.moduleCount(), Subspace, subspaceRateAlphabet(Subspace));
      Run.Blocks = std::move(Identified.Blocks);
      CompositeVectors = std::move(Identified.CompositeVectors);
    } else {
      Run.Blocks = perModuleBlocks(Subspace);
      CompositeVectors = coverWithBlocks(Subspace, Run.Blocks);
    }
    if (!Overlap) {
      if (cancelRequested())
        return Error::failure("job cancelled");
      Result<PretrainStats> Stats = pretrainBlocks(
          Engine.model(), Engine.teacher(), "full", Run.Blocks, Data, Meta,
          Store, Generator, &Engine.scores(), &Log, &Cache);
      if (!Stats)
        return Stats.takeError();
      Run.Pretrain = *Stats;
    }
  }

  // Overlap prep: partition the blocks exactly like pretrainBlocks would
  // and derive one generator per group from a single base draw plus the
  // group's block ids (pretrainGroupSeed) — drawn before the evaluation
  // seeds and independent of how many groups the block cache satisfied,
  // so the run is deterministic regardless of which worker trains which
  // group and a warm or resumed run reproduces the cold run's draws.
  std::vector<std::vector<TuningBlock>> Groups;
  std::vector<Rng> GroupRngs;
  std::map<std::string, size_t> GroupOfBlock;
  size_t PendingBlockCount = 0;
  if (Overlap && Options.UseComposability) {
    const uint64_t BaseSeed = Generator.next();
    std::vector<TuningBlock> Pending;
    for (const TuningBlock &Block : Run.Blocks) {
      if (Block.isIdentity() || Store.contains(Block.id()))
        continue;
      if (Cache.enabled() && Cache.fetch(Block.id(), Store))
        continue;
      Pending.push_back(Block);
    }
    PendingBlockCount = Pending.size();
    Groups = partitionIntoGroups(std::move(Pending));
    for (size_t G = 0; G < Groups.size(); ++G) {
      GroupRngs.emplace_back(pretrainGroupSeed(BaseSeed, Groups[G]));
      for (const TuningBlock &Block : Groups[G])
        GroupOfBlock[Block.id()] = G;
    }
  }

  // Phase 2: evaluate every configuration in exploration order. Seeds
  // are drawn up front so serial and parallel runs produce identical
  // results.
  const size_t ConfigCount = Subspace.size();
  std::vector<uint64_t> Seeds(ConfigCount);
  for (uint64_t &Seed : Seeds)
    Seed = Generator.next();
  Run.Evaluations.resize(ConfigCount);

  auto evaluateOne = [&](size_t Index) -> Error {
    const PruneConfig &Config = Subspace[Index];
    std::vector<TuningBlock> Composite;
    if (Options.UseComposability)
      for (int BlockIndex : CompositeVectors[Index])
        Composite.push_back(Run.Blocks[BlockIndex]);
    Result<EvaluatedConfig> Evaluated = Engine.evaluateConfig(
        Config, Options.UseComposability ? &Composite : nullptr,
        Seeds[Index]);
    if (!Evaluated)
      return Evaluated.takeError();
    Run.Evaluations[Index] = Evaluated.take();
    return Error::success();
  };

  // Exploration position P -> storage index (storage is ascending model
  // size; a max-Accuracy cancellation objective walks it backwards).
  const bool SmallestFirst = Options.CancelObjective
                                 ? Options.CancelObjective
                                       ->exploreSmallestFirst()
                                 : true;
  auto storageIndex = [&](size_t Position) {
    return SmallestFirst ? Position : ConfigCount - 1 - Position;
  };

  if (Overlap) {
    // One graph for everything: each block group is a task, and each
    // evaluation depends only on the groups its composite vector draws
    // from — an early (small) configuration fine-tunes while unrelated
    // blocks still pre-train.
    TaskGraph Graph(&Log);
    std::vector<GroupPretrainStats> GroupStats(Groups.size());

    // Which groups each evaluation needs, and per group the earliest
    // exploration position served (its scheduling urgency).
    std::vector<std::vector<size_t>> EvalGroups(ConfigCount);
    std::vector<size_t> GroupMinPos(Groups.size(), ConfigCount);
    for (size_t P = 0; P < ConfigCount; ++P) {
      const size_t Index = storageIndex(P);
      std::set<size_t> Needed;
      if (Options.UseComposability)
        for (int BlockIndex : CompositeVectors[Index]) {
          auto It = GroupOfBlock.find(Run.Blocks[BlockIndex].id());
          if (It != GroupOfBlock.end())
            Needed.insert(It->second);
        }
      EvalGroups[P].assign(Needed.begin(), Needed.end());
      for (size_t G : Needed)
        GroupMinPos[G] = std::min(GroupMinPos[G], P);
    }

    std::vector<TaskId> GroupTask(Groups.size());
    for (size_t G = 0; G < Groups.size(); ++G)
      GroupTask[G] = Graph.add(
          "pretrain:g" + std::to_string(G), {},
          -static_cast<int>(GroupMinPos[G]), [&, G]() -> Error {
            if (cancelRequested())
              return Error::failure("job cancelled");
            Result<GroupPretrainStats> Stats = pretrainGroup(
                Engine.model(), Engine.teacher(), "full", Groups[G], Data,
                Meta, Store, GroupRngs[G], &Engine.scores(), &Cache);
            if (!Stats)
              return Stats.takeError();
            GroupStats[G] = *Stats;
            return Error::success();
          });

    std::vector<TaskId> EvalTask(ConfigCount);
    for (size_t P = 0; P < ConfigCount; ++P) {
      const size_t Index = storageIndex(P);
      std::vector<TaskId> Deps;
      for (size_t G : EvalGroups[P])
        Deps.push_back(GroupTask[G]);
      EvalTask[P] = Graph.add(
          "eval:" + std::to_string(P), std::move(Deps),
          -static_cast<int>(P), [&, P, Index]() -> Error {
            if (Error E = evaluateOne(Index))
              return E;
            // The cancellation rule: exploration ascends the objective's
            // preference order, so once this configuration satisfies the
            // objective nothing later in the order can beat it — stop
            // paying for it. Earlier positions stay: they could still
            // win.
            if (Options.CancelObjective) {
              const EvaluatedConfig &Mine = Run.Evaluations[Index];
              if (Options.CancelObjective->satisfied(Mine.WeightCount,
                                                     Mine.FinalAccuracy)) {
                for (size_t Later = P + 1; Later < ConfigCount; ++Later)
                  Graph.cancel(EvalTask[Later]);
                for (size_t G = 0; G < Groups.size(); ++G)
                  if (GroupMinPos[G] > P)
                    Graph.cancel(GroupTask[G]);
              }
            }
            return Error::success();
          });
    }

    if (Error E = Graph.run(Workers))
      return E;

    for (size_t P = 0; P < ConfigCount; ++P) {
      if (Graph.state(EvalTask[P]) != TaskState::Cancelled)
        continue;
      const size_t Index = storageIndex(P);
      EvaluatedConfig &E = Run.Evaluations[Index];
      E.Cancelled = true;
      E.Config = Subspace[Index];
      E.WeightCount = modelWeightCount(Spec, Subspace[Index]);
      E.SizeFraction = static_cast<double>(E.WeightCount) /
                       static_cast<double>(Run.FullWeightCount);
    }

    Run.Pretrain.BlockCount = static_cast<int>(PendingBlockCount);
    Run.Pretrain.GroupCount = static_cast<int>(Groups.size());
    int TrainedGroups = 0;
    for (size_t G = 0; G < Groups.size(); ++G) {
      if (Graph.state(GroupTask[G]) != TaskState::Done)
        continue;
      Run.Pretrain.GroupSeconds.push_back(GroupStats[G].Seconds);
      Run.Pretrain.Seconds += GroupStats[G].Seconds;
      Run.Pretrain.FirstLoss += GroupStats[G].FirstLoss;
      Run.Pretrain.LastLoss += GroupStats[G].LastLoss;
      ++TrainedGroups;
    }
    if (TrainedGroups > 0) {
      Run.Pretrain.FirstLoss /= TrainedGroups;
      Run.Pretrain.LastLoss /= TrainedGroups;
    }
  } else if (Workers > 1) {
    // Concurrent evaluations may share the teacher graph (distillation):
    // each fine-tune forwards it through a private ExecContext, so only
    // its read-only parameters are shared across the workers.
    TaskGraph Graph(&Log);
    for (size_t P = 0; P < ConfigCount; ++P) {
      const size_t Index = storageIndex(P);
      Graph.add("eval:" + std::to_string(P), {}, -static_cast<int>(P),
                [&, Index]() { return evaluateOne(Index); });
    }
    if (Error E = Graph.run(Workers))
      return E;
  } else {
    std::string FirstError;
    for (size_t Index = 0; Index < ConfigCount; ++Index) {
      const double StartAt = Log.now();
      Error E = evaluateOne(Index);
      SpanEvent Span;
      Span.Name = "eval:" + std::to_string(Index);
      Span.ReadyAt = StartAt;
      Span.StartAt = StartAt;
      Span.EndAt = Log.now();
      Span.Status = E ? "failed" : "done";
      if (E)
        Span.Detail = E.message();
      Log.record(std::move(Span));
      Log.bump(E ? "tasks_failed" : "tasks_done");
      if (E && FirstError.empty())
        FirstError = E.message();
    }
    if (!FirstError.empty())
      return Error::failure(FirstError);
  }

  for (const EvaluatedConfig &E : Run.Evaluations)
    Run.EvaluationSeconds += E.TrainSeconds;
  Run.Telemetry = Log.snapshot();
  if (!Options.TelemetryPath.empty())
    if (Error E = Log.writeJsonl(Options.TelemetryPath))
      return E;
  return Run;
}

ExplorationSummary
wootz::summarizeExploration(const PipelineResult &Run,
                            const PruningObjective &Objective, int Nodes) {
  const size_t Count = Run.Evaluations.size();
  std::vector<double> Seconds(Count);
  std::vector<bool> Satisfies(Count);
  // Evaluations are stored smallest-first; a max-Accuracy objective
  // walks them from the other end.
  const bool SmallestFirst = Objective.exploreSmallestFirst();
  for (size_t I = 0; I < Count; ++I) {
    const EvaluatedConfig &E =
        Run.Evaluations[SmallestFirst ? I : Count - 1 - I];
    Seconds[I] = E.TrainSeconds;
    Satisfies[I] = Objective.satisfied(E.WeightCount, E.FinalAccuracy);
  }

  const ExplorationOutcome Outcome =
      simulateExploration(Seconds, Satisfies, Nodes);
  ExplorationSummary Summary;
  Summary.ConfigsEvaluated = Outcome.ConfigsEvaluated;
  Summary.WinnerIndex = Outcome.WinnerIndex;
  Summary.PretrainSeconds = pretrainMakespan(Run.Pretrain.GroupSeconds,
                                             Nodes);
  Summary.Seconds = Outcome.Seconds + Summary.PretrainSeconds;
  Summary.OverheadFraction =
      Summary.Seconds > 0.0 ? Summary.PretrainSeconds / Summary.Seconds
                            : 0.0;
  if (Outcome.WinnerIndex >= 0) {
    const size_t Index = SmallestFirst
                             ? Outcome.WinnerIndex
                             : Count - 1 - Outcome.WinnerIndex;
    Summary.WinnerSizeFraction = Run.Evaluations[Index].SizeFraction;
  }
  return Summary;
}

ExplorationSummary
wootz::summarizeMeasuredRun(const PipelineResult &Run,
                            const PruningObjective &Objective) {
  ExplorationSummary Summary;
  Summary.Measured = true;
  const size_t Count = Run.Evaluations.size();
  const bool SmallestFirst = Objective.exploreSmallestFirst();
  for (size_t P = 0; P < Count; ++P) {
    const size_t Index = SmallestFirst ? P : Count - 1 - P;
    const EvaluatedConfig &E = Run.Evaluations[Index];
    if (E.Cancelled)
      continue;
    ++Summary.ConfigsEvaluated;
    if (Summary.WinnerIndex < 0 &&
        Objective.satisfied(E.WeightCount, E.FinalAccuracy)) {
      Summary.WinnerIndex = static_cast<int>(P);
      Summary.WinnerSizeFraction = E.SizeFraction;
    }
  }
  // Measured semantics: Seconds is the real makespan (pre-training and
  // evaluation already overlap inside it), and overhead is pre-training's
  // share of total busy time.
  Summary.Seconds = Run.Telemetry.makespan();
  Summary.PretrainSeconds = Run.Telemetry.busySeconds("pretrain");
  const double Busy =
      Summary.PretrainSeconds + Run.Telemetry.busySeconds("eval");
  Summary.OverheadFraction =
      Busy > 0.0 ? Summary.PretrainSeconds / Busy : 0.0;
  return Summary;
}
