//===- explore/Pipeline.cpp -----------------------------------------------------===//

#include "src/explore/Pipeline.h"

#include "src/identifier/Identifier.h"
#include "src/support/ThreadPool.h"

#include <algorithm>
#include <mutex>

using namespace wootz;

/// Distinct rates used by \p Subspace (always including 0), the rate
/// alphabet handed to the identifier.
static std::vector<float>
rateAlphabet(const std::vector<PruneConfig> &Subspace) {
  std::vector<float> Rates{0.0f};
  for (const PruneConfig &Config : Subspace)
    for (float Rate : Config)
      if (std::find(Rates.begin(), Rates.end(), Rate) == Rates.end())
        Rates.push_back(Rate);
  std::sort(Rates.begin(), Rates.end());
  return Rates;
}

Result<PipelineResult> wootz::runPruningPipeline(
    const ModelSpec &Spec, const Dataset &Data,
    std::vector<PruneConfig> Subspace, const TrainMeta &Meta,
    const PipelineOptions &Options, Rng &Generator) {
  if (Subspace.empty())
    return Error::failure("the promising subspace is empty");
  const MultiplexingModel Model(Spec);
  PipelineResult Run;

  // Phase 0: the trained full model every pruned network derives from.
  Result<FullModel> Full =
      prepareFullModel(Model, Data, Meta, Options.CacheDir, Generator);
  if (!Full)
    return Full.takeError();
  Run.FullAccuracy = Full->Accuracy;
  Run.FullWeightCount = modelWeightCount(Spec, unprunedConfig(Spec));

  // Filter importances are a property of the trained full model; score
  // once and reuse for every configuration and tuning block.
  Result<FilterScores> Scores = scoreFilters(
      Spec, Full->Network, "full", Options.Criterion, &Data);
  if (!Scores)
    return Scores.takeError();

  // Exploration order: ascending model size (min-ModelSize objective).
  std::sort(Subspace.begin(), Subspace.end(),
            [&](const PruneConfig &A, const PruneConfig &B) {
              return modelWeightCount(Spec, A) < modelWeightCount(Spec, B);
            });

  // Phase 1 (composability only): choose and pre-train tuning blocks.
  CheckpointStore Store;
  std::vector<std::vector<int>> CompositeVectors;
  if (Options.UseComposability) {
    if (Options.UseIdentifier) {
      IdentifierResult Identified = identifyTuningBlocks(
          Spec.moduleCount(), Subspace, rateAlphabet(Subspace));
      Run.Blocks = std::move(Identified.Blocks);
      CompositeVectors = std::move(Identified.CompositeVectors);
    } else {
      Run.Blocks = perModuleBlocks(Subspace);
      CompositeVectors = coverWithBlocks(Subspace, Run.Blocks);
    }
    Result<PretrainStats> Stats =
        pretrainBlocks(Model, Full->Network, "full", Run.Blocks, Data,
                       Meta, Store, Generator, &*Scores);
    if (!Stats)
      return Stats.takeError();
    Run.Pretrain = *Stats;
  }

  // Phase 2: evaluate every configuration in exploration order. Seeds
  // are drawn up front so serial and parallel runs produce identical
  // results.
  const size_t ConfigCount = Subspace.size();
  std::vector<uint64_t> Seeds(ConfigCount);
  for (uint64_t &Seed : Seeds)
    Seed = Generator.next();
  Run.Evaluations.resize(ConfigCount);
  std::mutex ErrorMutex;
  std::string FirstError;

  auto evaluateOne = [&](size_t Index) {
    const PruneConfig &Config = Subspace[Index];
    std::vector<TuningBlock> Composite;
    if (Options.UseComposability)
      for (int BlockIndex : CompositeVectors[Index])
        Composite.push_back(Run.Blocks[BlockIndex]);

    Rng ConfigGen(Seeds[Index]);
    Result<AssembledNetwork> Assembled = buildPrunedNetwork(
        Model, Config, Full->Network, "full",
        Options.UseComposability ? &Store : nullptr,
        Options.UseComposability ? &Composite : nullptr, ConfigGen,
        &*Scores);
    if (!Assembled) {
      std::lock_guard<std::mutex> Lock(ErrorMutex);
      if (FirstError.empty())
        FirstError = Assembled.message();
      return;
    }

    const TrainResult Trained =
        Options.DistillAlpha > 0.0f
            ? trainClassifierDistilled(
                  Assembled->Network, Assembled->InputNode,
                  Assembled->LogitsNode, Full->Network, Assembled->InputNode,
                  "full/" + Spec.Layers.back().Name, Data, Meta,
                  Meta.FinetuneSteps, Meta.FinetuneLearningRate,
                  Options.DistillAlpha, Options.DistillTemperature,
                  ConfigGen)
            : trainClassifier(Assembled->Network, Assembled->InputNode,
                              Assembled->LogitsNode, Data, Meta,
                              Meta.FinetuneSteps,
                              Meta.FinetuneLearningRate, ConfigGen);

    EvaluatedConfig Evaluated;
    Evaluated.Config = Config;
    Evaluated.WeightCount = modelWeightCount(Spec, Config);
    Evaluated.SizeFraction = static_cast<double>(Evaluated.WeightCount) /
                             static_cast<double>(Run.FullWeightCount);
    Evaluated.InitAccuracy = Trained.InitialAccuracy;
    Evaluated.FinalAccuracy = Trained.FinalAccuracy;
    Evaluated.StepsToBest = Trained.StepsToBest;
    Evaluated.TrainSeconds = Trained.Seconds;
    if (Options.KeepCurves)
      Evaluated.Curve = Trained.Curve;
    Evaluated.BlocksUsed = Assembled->BlocksUsed;
    Run.Evaluations[Index] = std::move(Evaluated);
  };

  // Distillation shares the teacher graph's activation buffers across
  // evaluations, so it must stay on one thread.
  if (Options.Workers > 1 && Options.DistillAlpha == 0.0f) {
    ThreadPool Pool(static_cast<unsigned>(Options.Workers));
    Pool.parallelFor(ConfigCount, evaluateOne);
  } else {
    for (size_t Index = 0; Index < ConfigCount; ++Index)
      evaluateOne(Index);
  }
  if (!FirstError.empty())
    return Error::failure(FirstError);
  for (const EvaluatedConfig &E : Run.Evaluations)
    Run.EvaluationSeconds += E.TrainSeconds;
  return Run;
}

ExplorationSummary
wootz::summarizeExploration(const PipelineResult &Run,
                            const PruningObjective &Objective, int Nodes) {
  const size_t Count = Run.Evaluations.size();
  std::vector<double> Seconds(Count);
  std::vector<bool> Satisfies(Count);
  // Evaluations are stored smallest-first; a max-Accuracy objective
  // walks them from the other end.
  const bool SmallestFirst = Objective.exploreSmallestFirst();
  for (size_t I = 0; I < Count; ++I) {
    const EvaluatedConfig &E =
        Run.Evaluations[SmallestFirst ? I : Count - 1 - I];
    Seconds[I] = E.TrainSeconds;
    Satisfies[I] = Objective.satisfied(E.WeightCount, E.FinalAccuracy);
  }

  const ExplorationOutcome Outcome =
      simulateExploration(Seconds, Satisfies, Nodes);
  ExplorationSummary Summary;
  Summary.ConfigsEvaluated = Outcome.ConfigsEvaluated;
  Summary.WinnerIndex = Outcome.WinnerIndex;
  Summary.PretrainSeconds = pretrainMakespan(Run.Pretrain.GroupSeconds,
                                             Nodes);
  Summary.Seconds = Outcome.Seconds + Summary.PretrainSeconds;
  Summary.OverheadFraction =
      Summary.Seconds > 0.0 ? Summary.PretrainSeconds / Summary.Seconds
                            : 0.0;
  if (Outcome.WinnerIndex >= 0) {
    const size_t Index = SmallestFirst
                             ? Outcome.WinnerIndex
                             : Count - 1 - Outcome.WinnerIndex;
    Summary.WinnerSizeFraction = Run.Evaluations[Index].SizeFraction;
  }
  return Summary;
}
