//===- explore/Report.h - Pipeline result reporting -------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a PipelineResult for humans and downstream tooling: a CSV of
/// every evaluated configuration (one row per network, suitable for
/// plotting Figures 6/7-style charts) and a markdown report summarizing
/// the run and the exploration outcome under an objective.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_EXPLORE_REPORT_H
#define WOOTZ_EXPLORE_REPORT_H

#include "src/explore/Pipeline.h"

#include <string>

namespace wootz {

/// CSV with header
/// `config,weights,size_fraction,init_accuracy,final_accuracy,
///  steps_to_best,train_seconds,blocks_used`;
/// one row per evaluated configuration in exploration order.
std::string renderEvaluationsCsv(const PipelineResult &Run);

/// Markdown report: run header (full model, pre-training stats), the
/// evaluation table, and the winner under \p Objective at \p Nodes
/// machines.
std::string renderRunReport(const PipelineResult &Run,
                            const PruningObjective &Objective, int Nodes);

} // namespace wootz

#endif // WOOTZ_EXPLORE_REPORT_H
