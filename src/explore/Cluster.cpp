//===- explore/Cluster.cpp ------------------------------------------------------===//

#include "src/explore/Cluster.h"

#include <algorithm>
#include <cassert>

using namespace wootz;

ExplorationOutcome
wootz::simulateExploration(const std::vector<double> &SecondsPerConfig,
                           const std::vector<bool> &Satisfies, int Nodes) {
  assert(Nodes >= 1 && "at least one node required");
  assert(SecondsPerConfig.size() == Satisfies.size() &&
         "times and satisfaction flags must align");
  const int ConfigCount = static_cast<int>(SecondsPerConfig.size());

  ExplorationOutcome Outcome;
  for (int I = 0; I < ConfigCount; ++I) {
    if (Satisfies[I]) {
      Outcome.WinnerIndex = I;
      break;
    }
  }

  // Rounds completed before stopping: all of them when there is no
  // winner, otherwise up to and including the winner's round.
  const int Rounds = Outcome.WinnerIndex < 0
                         ? (ConfigCount + Nodes - 1) / Nodes
                         : Outcome.WinnerIndex / Nodes + 1;
  Outcome.ConfigsEvaluated = std::min(ConfigCount, Rounds * Nodes);

  double Makespan = 0.0;
  for (int Node = 0; Node < Nodes; ++Node) {
    double NodeTotal = 0.0;
    for (int Round = 0; Round < Rounds; ++Round) {
      const int Index = Node + Round * Nodes;
      if (Index < ConfigCount)
        NodeTotal += SecondsPerConfig[Index];
    }
    Makespan = std::max(Makespan, NodeTotal);
  }
  Outcome.Seconds = Makespan;
  return Outcome;
}

double wootz::pretrainMakespan(const std::vector<double> &GroupSeconds,
                               int Nodes) {
  assert(Nodes >= 1 && "at least one node required");
  std::vector<double> NodeTotals(Nodes, 0.0);
  for (size_t Group = 0; Group < GroupSeconds.size(); ++Group)
    NodeTotals[Group % Nodes] += GroupSeconds[Group];
  return *std::max_element(NodeTotals.begin(), NodeTotals.end());
}

std::string wootz::taskAssignmentFile(int ConfigCount, int Nodes) {
  std::string Out = "# Wootz exploration task assignment\n";
  Out += "# node i evaluates the (i + p*j)-th model in exploration order\n";
  for (int Node = 0; Node < Nodes; ++Node) {
    Out += "node " + std::to_string(Node) + ":";
    for (int Index = Node; Index < ConfigCount; Index += Nodes)
      Out += " " + std::to_string(Index);
    Out += "\n";
  }
  return Out;
}
