//===- explore/Iterative.h - Subspace-free iterative pruning ----------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extension the paper flags as future work (§4): "There are methods
/// that do not provide the subspace explicitly. They, however, still
/// need to tune the pruning rate for each layer and the exploration could
/// also contain potentially avoidable computations. Extending Wootz to
/// harvest those opportunities is a direction worth future exploration."
///
/// runIterativeExploration() is that extension: a greedy sensitivity
/// search that generates configurations on the fly. Starting from the
/// unpruned configuration, each iteration tries bumping every module's
/// rate to the next alphabet value, evaluates each candidate as a
/// block-trained network, and commits the bump that keeps accuracy
/// highest while it stays above the threshold. The composability
/// machinery pays off across candidates: a (module, rate) tuning block
/// is pre-trained the first time any candidate needs it and reused by
/// every later candidate that shares it — the cross-evaluation reuse the
/// paper's subspace pipeline gets, harvested without a subspace.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_EXPLORE_ITERATIVE_H
#define WOOTZ_EXPLORE_ITERATIVE_H

#include "src/explore/Pipeline.h"

namespace wootz {

/// Knobs for the iterative search.
struct IterativeOptions {
  /// Candidates whose fine-tuned accuracy falls below this are rejected.
  double AccuracyThreshold = 0.0;
  /// Ascending pruning-rate alphabet including 0 (the starting rate).
  std::vector<float> Rates = {0.0f, 0.3f, 0.5f, 0.7f};
  /// Upper bound on committed bumps (<= modules * (rates-1)).
  int MaxIterations = 64;
  /// Full-model cache directory (empty disables caching).
  std::string CacheDir;
};

/// One committed step of the trajectory.
struct IterativeStep {
  PruneConfig Config; ///< Configuration after the commit.
  int Module = 0;     ///< Module whose rate was bumped.
  float Rate = 0.0f;  ///< New rate of that module.
  double Accuracy = 0.0;
  size_t WeightCount = 0;
  int CandidatesTried = 0; ///< Candidates evaluated this iteration.
  int BlocksReused = 0;    ///< Candidate evaluations served from cache.
  int BlocksTrained = 0;   ///< Blocks pre-trained this iteration.
};

/// The search outcome.
struct IterativeResult {
  std::vector<IterativeStep> Trajectory;
  PruneConfig BestConfig;
  double BestAccuracy = 0.0;
  size_t BestWeightCount = 0;
  double FullAccuracy = 0.0;
  size_t FullWeightCount = 0;
  int TotalCandidates = 0;
  int TotalBlocksTrained = 0;
  int TotalBlockReuses = 0;
  double Seconds = 0.0;
};

/// Runs the greedy block-reusing search on \p Data.
Result<IterativeResult> runIterativeExploration(
    const ModelSpec &Spec, const Dataset &Data, const TrainMeta &Meta,
    const IterativeOptions &Options, Rng &Generator);

} // namespace wootz

#endif // WOOTZ_EXPLORE_ITERATIVE_H
