//===- explore/Report.cpp -----------------------------------------------------===//

#include "src/explore/Report.h"

#include "src/support/StringUtils.h"
#include "src/support/Table.h"

using namespace wootz;

/// CSV-quotes a cell (the config column contains commas).
static std::string csvQuote(const std::string &Cell) {
  std::string Out = "\"";
  for (char C : Cell) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  return Out + "\"";
}

std::string wootz::renderEvaluationsCsv(const PipelineResult &Run) {
  std::string Out = "config,weights,size_fraction,init_accuracy,"
                    "final_accuracy,steps_to_best,train_seconds,"
                    "blocks_used,cancelled\n";
  for (const EvaluatedConfig &E : Run.Evaluations) {
    Out += csvQuote(formatConfig(E.Config)) + ",";
    Out += std::to_string(E.WeightCount) + ",";
    Out += formatDouble(E.SizeFraction, 4) + ",";
    Out += formatDouble(E.InitAccuracy, 4) + ",";
    Out += formatDouble(E.FinalAccuracy, 4) + ",";
    Out += std::to_string(E.StepsToBest) + ",";
    Out += formatDouble(E.TrainSeconds, 3) + ",";
    Out += csvQuote(join(E.BlocksUsed, ";")) + ",";
    Out += E.Cancelled ? "1" : "0";
    Out += '\n';
  }
  return Out;
}

std::string wootz::renderRunReport(const PipelineResult &Run,
                                   const PruningObjective &Objective,
                                   int Nodes) {
  std::string Out = "# Wootz pruning run\n\n";
  Out += "* full model: accuracy " + formatDouble(Run.FullAccuracy, 3) +
         ", " + std::to_string(Run.FullWeightCount) + " weights\n";
  Out += "* configurations evaluated: " +
         std::to_string(Run.Evaluations.size()) + "\n";
  if (!Run.Blocks.empty()) {
    Out += "* tuning blocks pre-trained: " +
           std::to_string(Run.Pretrain.BlockCount) + " in " +
           std::to_string(Run.Pretrain.GroupCount) + " group(s), " +
           formatDouble(Run.Pretrain.Seconds, 2) +
           " s (reconstruction loss " +
           formatDouble(Run.Pretrain.FirstLoss, 4) + " -> " +
           formatDouble(Run.Pretrain.LastLoss, 4) + ")\n";
  } else {
    Out += "* method: baseline (no tuning blocks)\n";
  }
  Out += "\n## Objective\n\n```\n" + printObjective(Objective) + "```\n";

  const ExplorationSummary Summary =
      summarizeExploration(Run, Objective, Nodes);
  Out += "\n## Outcome (" + std::to_string(Nodes) + " node(s))\n\n";
  if (Summary.WinnerIndex < 0) {
    Out += "No configuration met the objective (" +
           std::to_string(Summary.ConfigsEvaluated) + " evaluated, " +
           formatDouble(Summary.Seconds, 2) + " s).\n";
  } else {
    const EvaluatedConfig &Winner = Run.Evaluations[Summary.WinnerIndex];
    Out += "Winner `" + formatConfig(Winner.Config) + "`: " +
           formatDouble(100.0 * Winner.SizeFraction, 1) +
           "% of the full model, accuracy " +
           formatDouble(Winner.FinalAccuracy, 3) + ", found after " +
           std::to_string(Summary.ConfigsEvaluated) +
           " configuration(s) in " + formatDouble(Summary.Seconds, 2) +
           " s (pre-training share " +
           formatDouble(100.0 * Summary.OverheadFraction, 0) + "%).\n";
  }

  // Runtime-scheduled runs carry their own span log; summarize what
  // actually happened (as opposed to the simulated schedule above).
  if (Run.Telemetry.Measured) {
    Out += "\n## Runtime (measured)\n\n";
    Out += "* makespan: " + formatDouble(Run.Telemetry.makespan(), 2) +
           " s (pre-training busy " +
           formatDouble(Run.Telemetry.busySeconds("pretrain"), 2) +
           " s, evaluation busy " +
           formatDouble(Run.Telemetry.busySeconds("eval"), 2) + " s)\n";
    Out += "* tasks: " +
           std::to_string(Run.Telemetry.counter("tasks_done")) +
           " done, " +
           std::to_string(Run.Telemetry.counter("tasks_cancelled")) +
           " cancelled, " +
           std::to_string(Run.Telemetry.counter("tasks_failed")) +
           " failed\n";
    const double FirstEval = Run.Telemetry.firstStart("eval");
    const double LastPretrain = Run.Telemetry.lastEnd("pretrain");
    if (LastPretrain > 0.0 && FirstEval < LastPretrain)
      Out += "* overlap: first fine-tune started " +
             formatDouble(LastPretrain - FirstEval, 2) +
             " s before the last block group finished\n";
  }

  Out += "\n## Evaluations (exploration order)\n\n";
  Table Evaluations({"config", "size %", "init", "final", "steps-to-best",
                     "seconds", "blocks", "status"});
  for (const EvaluatedConfig &E : Run.Evaluations) {
    if (E.Cancelled) {
      Evaluations.addRow({formatConfig(E.Config),
                          formatDouble(100.0 * E.SizeFraction, 1), "-",
                          "-", "-", "-",
                          std::to_string(E.BlocksUsed.size()),
                          "cancelled"});
      continue;
    }
    Evaluations.addRow({formatConfig(E.Config),
                        formatDouble(100.0 * E.SizeFraction, 1),
                        formatDouble(E.InitAccuracy, 3),
                        formatDouble(E.FinalAccuracy, 3),
                        std::to_string(E.StepsToBest),
                        formatDouble(E.TrainSeconds, 2),
                        std::to_string(E.BlocksUsed.size()), "done"});
  }
  Out += "```\n" + Evaluations.render() + "```\n";
  return Out;
}
