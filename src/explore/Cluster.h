//===- explore/Cluster.h - Multi-node exploration schedule ---------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper distributes exploration over machines through MPI with a
/// static assignment: "the i-th node will evaluate the (i + p*j)-th
/// smallest (or largest) model" (§6.2). We reproduce that schedule as a
/// simulation over measured per-configuration training times (see
/// DESIGN.md §2): configurations run in rounds of p, and exploration
/// stops at the end of the round in which the first satisfying
/// configuration completes — giving Table 3's per-node-count
/// configuration counts and makespans.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_EXPLORE_CLUSTER_H
#define WOOTZ_EXPLORE_CLUSTER_H

#include <string>
#include <vector>

namespace wootz {

/// Result of simulating one exploration schedule.
struct ExplorationOutcome {
  /// Configurations evaluated before exploration stopped (all of them
  /// when nothing satisfies the objective).
  int ConfigsEvaluated = 0;
  /// Makespan: the time at which every node finished its share of the
  /// completed rounds.
  double Seconds = 0.0;
  /// Index (into the exploration order) of the first satisfying
  /// configuration, or -1.
  int WinnerIndex = -1;
};

/// Simulates the paper's schedule. \p SecondsPerConfig and
/// \p Satisfies are indexed in exploration order; \p Nodes >= 1.
ExplorationOutcome
simulateExploration(const std::vector<double> &SecondsPerConfig,
                    const std::vector<bool> &Satisfies, int Nodes);

/// Round-robin makespan for the pre-training groups: group g runs on
/// node g % Nodes; the makespan is the largest per-node total.
double pretrainMakespan(const std::vector<double> &GroupSeconds, int Nodes);

/// Renders the task assignment file the Wootz compiler generates for
/// concurrent exploration: one line per node listing the exploration-
/// order indices it evaluates.
std::string taskAssignmentFile(int ConfigCount, int Nodes);

} // namespace wootz

#endif // WOOTZ_EXPLORE_CLUSTER_H
