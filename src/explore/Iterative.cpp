//===- explore/Iterative.cpp ---------------------------------------------------===//

#include "src/explore/Iterative.h"

#include "src/support/Stopwatch.h"
#include "src/train/Assembly.h"
#include "src/train/ModelZoo.h"
#include "src/train/Pretrainer.h"

#include <algorithm>

using namespace wootz;

Result<IterativeResult> wootz::runIterativeExploration(
    const ModelSpec &Spec, const Dataset &Data, const TrainMeta &Meta,
    const IterativeOptions &Options, Rng &Generator) {
  if (Options.Rates.size() < 2 || Options.Rates.front() != 0.0f)
    return Error::failure("the rate alphabet must start at 0 and contain "
                          "at least one pruned rate");
  if (!std::is_sorted(Options.Rates.begin(), Options.Rates.end()))
    return Error::failure("the rate alphabet must be ascending");

  Stopwatch Timer;
  const MultiplexingModel Model(Spec);
  IterativeResult Out;

  Result<FullModel> Full =
      prepareFullModel(Model, Data, Meta, Options.CacheDir, Generator);
  if (!Full)
    return Full.takeError();
  Out.FullAccuracy = Full->Accuracy;
  Out.FullWeightCount = modelWeightCount(Spec, unprunedConfig(Spec));

  CheckpointStore Store;
  const int ModuleCount = Spec.moduleCount();
  std::vector<int> RateIndex(ModuleCount, 0); // Index into Options.Rates.
  PruneConfig Current = unprunedConfig(Spec);
  Out.BestConfig = Current;
  Out.BestAccuracy = Full->Accuracy;
  Out.BestWeightCount = Out.FullWeightCount;

  for (int Iteration = 0; Iteration < Options.MaxIterations; ++Iteration) {
    IterativeStep Step;
    double BestCandidateAccuracy = -1.0;
    int BestModule = -1;
    PruneConfig BestCandidate;

    for (int Module = 0; Module < ModuleCount; ++Module) {
      if (RateIndex[Module] + 1 >= static_cast<int>(Options.Rates.size()))
        continue; // Already at the heaviest rate.
      PruneConfig Candidate = Current;
      const float NewRate = Options.Rates[RateIndex[Module] + 1];
      Candidate[Module] = NewRate;
      ++Step.CandidatesTried;
      ++Out.TotalCandidates;

      // Composability harvest: pre-train only the blocks this candidate
      // is missing; everything already in the store is reused.
      std::vector<TuningBlock> Composite;
      for (int M = 0; M < ModuleCount; ++M)
        if (Candidate[M] != 0.0f)
          Composite.push_back(TuningBlock{M, {Candidate[M]}});
      Result<PretrainStats> Stats =
          pretrainBlocks(Model, Full->Network, "full", Composite, Data,
                         Meta, Store, Generator);
      if (!Stats)
        return Stats.takeError();
      const int Reused =
          static_cast<int>(Composite.size()) - Stats->BlockCount;
      Step.BlocksTrained += Stats->BlockCount;
      Out.TotalBlocksTrained += Stats->BlockCount;
      Step.BlocksReused += Reused;
      Out.TotalBlockReuses += Reused;

      Result<AssembledNetwork> Assembled =
          buildPrunedNetwork(Model, Candidate, Full->Network, "full",
                             &Store, &Composite, Generator);
      if (!Assembled)
        return Assembled.takeError();
      const TrainResult Trial = trainClassifier(
          Assembled->Network, Assembled->InputNode, Assembled->LogitsNode,
          Data, Meta, Meta.FinetuneSteps, Meta.FinetuneLearningRate,
          Generator);
      if (Trial.FinalAccuracy >= Options.AccuracyThreshold &&
          Trial.FinalAccuracy > BestCandidateAccuracy) {
        BestCandidateAccuracy = Trial.FinalAccuracy;
        BestModule = Module;
        BestCandidate = Candidate;
      }
    }

    if (BestModule < 0)
      break; // No bump keeps the constraint: the search has converged.
    ++RateIndex[BestModule];
    Current = BestCandidate;
    Step.Config = Current;
    Step.Module = BestModule;
    Step.Rate = Options.Rates[RateIndex[BestModule]];
    Step.Accuracy = BestCandidateAccuracy;
    Step.WeightCount = modelWeightCount(Spec, Current);
    Out.Trajectory.push_back(Step);

    Out.BestConfig = Current;
    Out.BestAccuracy = BestCandidateAccuracy;
    Out.BestWeightCount = Step.WeightCount;
  }
  Out.Seconds = Timer.seconds();
  return Out;
}
