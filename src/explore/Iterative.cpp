//===- explore/Iterative.cpp ---------------------------------------------------===//

#include "src/explore/Iterative.h"

#include "src/explore/strategy/Driver.h"
#include "src/explore/strategy/GreedySensitivity.h"
#include "src/support/Stopwatch.h"

#include <algorithm>

using namespace wootz;

Result<IterativeResult> wootz::runIterativeExploration(
    const ModelSpec &Spec, const Dataset &Data, const TrainMeta &Meta,
    const IterativeOptions &Options, Rng &Generator) {
  if (Options.Rates.size() < 2 || Options.Rates.front() != 0.0f)
    return Error::failure("the rate alphabet must start at 0 and contain "
                          "at least one pruned rate");
  if (!std::is_sorted(Options.Rates.begin(), Options.Rates.end()))
    return Error::failure("the rate alphabet must be ascending");

  Stopwatch Timer;

  // The greedy search behind the strategy interface: the objective is
  // "smallest model holding the accuracy threshold", and the driver
  // supplies the composability harvest — a (module, rate) tuning block
  // pre-trains the first time any candidate needs it and is reused by
  // every later candidate that shares it.
  const PruningObjective Objective =
      smallestMeetingAccuracy(Options.AccuracyThreshold);
  StrategyKnobs Knobs;
  Knobs.Rates = Options.Rates;
  Knobs.MaxRounds = Options.MaxIterations;
  GreedySensitivityStrategy Strategy(Spec, Objective, Knobs);

  PipelineOptions PipeOptions;
  PipeOptions.UseComposability = true;
  PipeOptions.UseIdentifier = false; // Per-(module, rate) blocks.
  PipeOptions.CacheDir = Options.CacheDir;
  PipeOptions.Workers = 1;
  PipeOptions.Schedule = PipelineSchedule::EvalOnly;

  Result<StrategyRunResult> Search = runStrategyExploration(
      Spec, Data, Strategy, Meta, PipeOptions, Objective, Generator);
  if (!Search)
    return Search.takeError();

  IterativeResult Out;
  Out.FullAccuracy = Search->Run.FullAccuracy;
  Out.FullWeightCount = Search->Run.FullWeightCount;
  Out.BestConfig = unprunedConfig(Spec);
  Out.BestAccuracy = Out.FullAccuracy;
  Out.BestWeightCount = Out.FullWeightCount;
  Out.TotalCandidates = Search->Proposals;
  Out.TotalBlockReuses = Search->BlocksReused;

  // Commit i digests round i's candidates, so the trajectory pairs the
  // strategy's commits with the driver's per-round bookkeeping.
  const std::vector<GreedySensitivityStrategy::Commit> &Commits =
      Strategy.commits();
  for (size_t I = 0; I < Commits.size(); ++I) {
    const GreedySensitivityStrategy::Commit &C = Commits[I];
    const StrategyRoundInfo &Round = Search->RoundsInfo[I];
    const EvaluatedConfig &Winner = Search->Run.Evaluations[C.ObservedIndex];
    IterativeStep Step;
    Step.Config = C.Config;
    Step.Module = C.Module;
    Step.Rate = C.Rate;
    Step.Accuracy = Winner.FinalAccuracy;
    Step.WeightCount = Winner.WeightCount;
    Step.CandidatesTried = Round.Proposals;
    Step.BlocksTrained = Round.BlocksTrained;
    Step.BlocksReused = Round.BlocksReused;
    Out.Trajectory.push_back(Step);
    Out.BestConfig = C.Config;
    Out.BestAccuracy = Winner.FinalAccuracy;
    Out.BestWeightCount = Winner.WeightCount;
  }
  for (const StrategyRoundInfo &Round : Search->RoundsInfo)
    Out.TotalBlocksTrained += Round.BlocksTrained;
  Out.Seconds = Timer.seconds();
  return Out;
}
