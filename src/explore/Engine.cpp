//===- explore/Engine.cpp -----------------------------------------------------===//

#include "src/explore/Engine.h"

using namespace wootz;

ExplorationEngine::ExplorationEngine(const ModelSpec &Spec,
                                     const Dataset &Data,
                                     const TrainMeta &Meta,
                                     const PipelineOptions &Options)
    : Spec(Spec), Data(Data), Meta(Meta), Options(Options), Model(Spec),
      Log(Options.Log ? *Options.Log : OwnLog),
      Cache(Options.BlockCacheConfig, &Log) {}

Error ExplorationEngine::prepare(PipelineResult &Run, Rng &Generator) {
  // Cooperative cancellation: polled at every task boundary. The fixed
  // message lets callers that handed us the token tell an intentional
  // abort from a real failure.
  if (cancelRequested())
    return Error::failure("job cancelled before it started");

  // The trained full model every pruned network derives from.
  Result<FullModel> Prepared =
      prepareFullModel(Model, Data, Meta, Options.CacheDir, Generator);
  if (!Prepared)
    return Prepared.takeError();
  Full.emplace(Prepared.take());
  Run.FullAccuracy = Full->Accuracy;
  FullWeightCount = modelWeightCount(Spec, unprunedConfig(Spec));
  Run.FullWeightCount = FullWeightCount;

  // Filter importances are a property of the trained full model; score
  // once and reuse for every configuration and tuning block.
  Result<FilterScores> Scored = scoreFilters(
      Spec, Full->Network, "full", Options.Criterion, &Data);
  if (!Scored)
    return Scored.takeError();
  ScoreMap = Scored.take();

  // The cross-run block cache is only meaningful once the teacher
  // exists: its entry addresses incorporate the teacher fingerprint and
  // the pre-training hyperparameters, so a different teacher or recipe
  // simply misses instead of resurrecting stale blocks.
  if (Cache.enabled()) {
    Cache.bindContext(BlockCache::fingerprintTeacher(Full->Network),
                      BlockCache::hashPretrainMeta(Meta));
    // One bump per bound context: a run that rebinds (fresh teacher)
    // shows up, and a shared-cache fleet can compare counts to hits.
    Log.bump("cache.context_bound");
  }
  return Error::success();
}

Result<EvaluatedConfig> ExplorationEngine::evaluateConfig(
    const PruneConfig &Config, const std::vector<TuningBlock> *Composite,
    uint64_t Seed) {
  if (cancelRequested())
    return Error::failure("job cancelled");

  Rng ConfigGen(Seed);
  Result<AssembledNetwork> Assembled = buildPrunedNetwork(
      Model, Config, Full->Network, "full", Composite ? &Store : nullptr,
      Composite, ConfigGen, &ScoreMap);
  if (!Assembled)
    return Assembled.takeError();

  const TrainResult Trained =
      Options.DistillAlpha > 0.0f
          ? trainClassifierDistilled(
                Assembled->Network, Assembled->InputNode,
                Assembled->LogitsNode, Full->Network, Assembled->InputNode,
                "full/" + Spec.Layers.back().Name, Data, Meta,
                Meta.FinetuneSteps, Meta.FinetuneLearningRate,
                Options.DistillAlpha, Options.DistillTemperature, ConfigGen)
          : trainClassifier(Assembled->Network, Assembled->InputNode,
                            Assembled->LogitsNode, Data, Meta,
                            Meta.FinetuneSteps, Meta.FinetuneLearningRate,
                            ConfigGen);

  EvaluatedConfig Evaluated;
  Evaluated.Config = Config;
  Evaluated.WeightCount = modelWeightCount(Spec, Config);
  Evaluated.SizeFraction = static_cast<double>(Evaluated.WeightCount) /
                           static_cast<double>(FullWeightCount);
  Evaluated.InitAccuracy = Trained.InitialAccuracy;
  Evaluated.FinalAccuracy = Trained.FinalAccuracy;
  Evaluated.StepsToBest = Trained.StepsToBest;
  Evaluated.TrainSeconds = Trained.Seconds;
  if (Options.KeepCurves)
    Evaluated.Curve = Trained.Curve;
  Evaluated.BlocksUsed = Assembled->BlocksUsed;
  if (Options.KeepNetworks)
    Evaluated.Network = std::make_shared<AssembledNetwork>(Assembled.take());
  return Evaluated;
}
