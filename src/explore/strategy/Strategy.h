//===- explore/strategy/Strategy.h - Pluggable exploration strategies -------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exploration-strategy layer between subspace definition and
/// pipeline execution — the paper fixes the promising subspace up front
/// and flags on-the-fly configuration generation as future work (§4);
/// this interface makes both interchangeable. A strategy is a pure
/// proposal source: the driver (strategy/Driver.h) asks it for the next
/// round of configurations, evaluates them through the shared
/// ExplorationEngine (tuning blocks, TaskGraph scheduling, cancellation),
/// and feeds every result back before the next round.
///
/// Determinism contract: a strategy must be a pure function of its
/// construction parameters and the observed-result sequence — no
/// wall-clock reads, no global randomness. Replaying a strategy against
/// the same observation sequence must propose the identical
/// configuration lists (tests/StrategyTest.cpp enforces this for every
/// implementation). All training randomness lives in the driver's
/// pre-drawn per-proposal seeds, never in the strategy.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_EXPLORE_STRATEGY_STRATEGY_H
#define WOOTZ_EXPLORE_STRATEGY_STRATEGY_H

#include "src/explore/Objective.h"
#include "src/explore/Pipeline.h"

#include <memory>

namespace wootz {

/// Everything a strategy may inspect when proposing: the evaluations of
/// all previous rounds, in proposal order. Cancelled evaluations are
/// present but flagged (EvaluatedConfig::Cancelled) — their accuracy
/// fields are meaningless and strategies must skip them.
using ObservedResults = std::vector<EvaluatedConfig>;

/// A pluggable source of pruning configurations.
class ExplorationStrategy {
public:
  virtual ~ExplorationStrategy() = default;

  /// Diagnostic / serve-API name ("fixed", "greedy", "adaptive").
  virtual const char *name() const = 0;

  /// The next round of configurations to evaluate, given everything
  /// observed so far. An empty vector ends the exploration. The driver
  /// appends one result per proposal (in proposal order) to the sequence
  /// it passes next time, so a strategy can locate its own round as the
  /// trailing entries.
  virtual Result<std::vector<PruneConfig>>
  propose(const ObservedResults &Observed) = 0;

  /// True when each round's proposals are emitted in the objective's
  /// preference order (best candidate first). Only then may the driver
  /// cancel the rest of a round once an earlier proposal satisfies the
  /// cancellation objective — for an unordered round nothing can be
  /// pruned, since a later proposal could still win.
  virtual bool proposalsPreferenceOrdered() const { return false; }
};

/// The built-in strategies.
enum class StrategyKind { Fixed, Greedy, Adaptive };

/// Name for the serve API and diagnostics ("fixed", "greedy",
/// "adaptive").
const char *strategyKindName(StrategyKind Kind);

/// Parses a strategy name. Unknown names fail with an error that lists
/// every valid name (the serve API surfaces it verbatim as a 400).
Result<StrategyKind> parseStrategyKind(const std::string &Name);

/// Knobs shared by the built-in strategies (each documents its own
/// interpretation; unused knobs are ignored).
struct StrategyKnobs {
  /// Ascending pruning-rate alphabet including 0 (greedy/adaptive bump
  /// module rates along it). Empty selects standardRates().
  std::vector<float> Rates;
  /// Greedy: upper bound on committed bumps. Adaptive: upper bound on
  /// proposal rounds.
  int MaxRounds = 24;
  /// Adaptive: accuracy headroom above the constraint floor required
  /// before the step size is allowed to grow aggressively.
  double AccuracyMargin = 0.02;
};

/// The accuracy floor the objective's constraints impose (the largest
/// value of any "Accuracy >= v" / "Accuracy > v" constraint; 0 when the
/// objective has none). Strategies use it to accept or reject proposals
/// before the full objective — which may also bound the model size — is
/// reachable.
double objectiveAccuracyFloor(const PruningObjective &Objective);

/// Builds a strategy. \p Subspace is the enumerated promising subspace
/// (required non-empty for Fixed, used only as a rate-alphabet fallback
/// by the others when \p Knobs.Rates is empty). Fails when the knobs are
/// invalid (degenerate rate alphabet, non-positive round bound).
Result<std::unique_ptr<ExplorationStrategy>>
makeStrategy(StrategyKind Kind, const ModelSpec &Spec,
             const std::vector<PruneConfig> &Subspace,
             const PruningObjective &Objective, const StrategyKnobs &Knobs);

} // namespace wootz

#endif // WOOTZ_EXPLORE_STRATEGY_STRATEGY_H
