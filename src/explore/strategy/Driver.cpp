//===- explore/strategy/Driver.cpp --------------------------------------------===//

#include "src/explore/strategy/Driver.h"

#include "src/explore/Engine.h"
#include "src/identifier/Identifier.h"
#include "src/identifier/TuningBlock.h"
#include "src/runtime/TaskGraph.h"

#include <algorithm>
#include <map>
#include <set>
#include <thread>

using namespace wootz;

namespace {
/// Preference between two objective-satisfying evaluations.
bool preferredOver(const EvaluatedConfig &A, const EvaluatedConfig &B,
                   const PruningObjective &Objective) {
  if (Objective.Optimize == Metric::ModelSize)
    return Objective.Minimize ? A.WeightCount < B.WeightCount
                              : A.WeightCount > B.WeightCount;
  return Objective.Minimize ? A.FinalAccuracy < B.FinalAccuracy
                            : A.FinalAccuracy > B.FinalAccuracy;
}
} // namespace

Result<StrategyRunResult> wootz::runStrategyExploration(
    const ModelSpec &Spec, const Dataset &Data,
    ExplorationStrategy &Strategy, const TrainMeta &Meta,
    const PipelineOptions &Options, const PruningObjective &Objective,
    Rng &Generator) {
  if (Options.Workers < 0)
    return Error::failure("PipelineOptions::Workers must be non-negative "
                          "(0 means one per hardware thread), got " +
                          std::to_string(Options.Workers));
  const unsigned Workers =
      Options.Workers == 0
          ? std::max(1u, std::thread::hardware_concurrency())
          : static_cast<unsigned>(Options.Workers);
  const bool Overlap = Options.Schedule == PipelineSchedule::Overlap;
  // Within-round cancellation needs a preference order over the round:
  // only a strategy that emits best-first rounds allows discarding the
  // tail once an earlier proposal satisfies the objective.
  const bool CancelWithinRound = Overlap && Options.CancelObjective &&
                                 Strategy.proposalsPreferenceOrdered();

  StrategyRunResult Out;
  PipelineResult &Run = Out.Run;
  ExplorationEngine Engine(Spec, Data, Meta, Options);
  RunLog &Log = Engine.log();
  if (Error E = Engine.prepare(Run, Generator))
    return E;

  CheckpointStore &Store = Engine.store();
  BlockCache &Cache = Engine.blockCache();
  std::set<std::string> SeenBlockIds;
  size_t EvalCounter = 0;  ///< Global eval-span numbering across rounds.
  size_t GroupCounter = 0; ///< Global pretrain-span numbering.
  double FirstLossSum = 0.0, LastLossSum = 0.0;
  int LossGroups = 0;

  // A pure strategy over a finite rate lattice terminates, but a buggy
  // one must not hang the serve worker: cap the rounds far above any
  // real exploration.
  const int MaxDriverRounds = 4096;
  for (int RoundIndex = 0; RoundIndex < MaxDriverRounds; ++RoundIndex) {
    if (Engine.cancelRequested())
      return Error::failure("job cancelled");
    Result<std::vector<PruneConfig>> Next = Strategy.propose(Run.Evaluations);
    if (!Next)
      return Next.takeError();
    if (Next->empty())
      break;
    const std::vector<PruneConfig> Proposals = Next.take();
    for (const PruneConfig &Config : Proposals)
      if (static_cast<int>(Config.size()) != Spec.moduleCount())
        return Error::failure(
            "strategy '" + std::string(Strategy.name()) +
            "' proposed a configuration with " +
            std::to_string(Config.size()) + " rates; the model has " +
            std::to_string(Spec.moduleCount()) + " modules");

    StrategyRoundInfo Info;
    Info.FirstIndex = Run.Evaluations.size();
    Info.Proposals = static_cast<int>(Proposals.size());
    Log.bump("strategy.rounds");
    Log.bump("strategy.proposals", Info.Proposals);

    // The round's tuning blocks and composite vectors. Blocks live in
    // the engine's store across rounds, so only what this round's
    // proposals are missing gets pre-trained.
    std::vector<TuningBlock> RoundBlocks;
    std::vector<std::vector<int>> CompositeVectors;
    size_t NeededBlockUses = 0;
    if (Options.UseComposability) {
      if (Options.UseIdentifier) {
        IdentifierResult Identified = identifyTuningBlocks(
            Spec.moduleCount(), Proposals, subspaceRateAlphabet(Proposals));
        RoundBlocks = std::move(Identified.Blocks);
        CompositeVectors = std::move(Identified.CompositeVectors);
      } else {
        RoundBlocks = perModuleBlocks(Proposals);
        CompositeVectors = coverWithBlocks(Proposals, RoundBlocks);
      }
      for (const std::vector<int> &Vector : CompositeVectors)
        for (int BlockIndex : Vector)
          NeededBlockUses += !RoundBlocks[BlockIndex].isIdentity();
      for (const TuningBlock &Block : RoundBlocks)
        if (SeenBlockIds.insert(Block.id()).second)
          Run.Blocks.push_back(Block);
    }

    // Pre-draw this round's randomness in a schedule-independent order:
    // one pretrain draw, then one seed per proposal.
    std::vector<std::vector<TuningBlock>> Groups;
    std::vector<Rng> GroupRngs;
    std::map<std::string, size_t> GroupOfBlock;
    size_t PendingBlockCount = 0;
    if (Options.UseComposability && !Overlap) {
      if (Engine.cancelRequested())
        return Error::failure("job cancelled");
      Result<PretrainStats> Stats = pretrainBlocks(
          Engine.model(), Engine.teacher(), "full", RoundBlocks, Data, Meta,
          Store, Generator, &Engine.scores(), &Log, &Cache);
      if (!Stats)
        return Stats.takeError();
      Info.BlocksTrained = Stats->BlockCount;
      Run.Pretrain.BlockCount += Stats->BlockCount;
      Run.Pretrain.GroupCount += Stats->GroupCount;
      Run.Pretrain.Seconds += Stats->Seconds;
      Run.Pretrain.GroupSeconds.insert(Run.Pretrain.GroupSeconds.end(),
                                       Stats->GroupSeconds.begin(),
                                       Stats->GroupSeconds.end());
      FirstLossSum += Stats->FirstLoss * Stats->GroupCount;
      LastLossSum += Stats->LastLoss * Stats->GroupCount;
      LossGroups += Stats->GroupCount;
    } else if (Options.UseComposability) {
      // Overlap: the same partition pretrainBlocks would use, seeded
      // from one base draw plus the group's block ids — independent of
      // what the store or cache already holds, so warm and cold runs
      // draw identically.
      const uint64_t BaseSeed = Generator.next();
      std::vector<TuningBlock> Pending;
      for (const TuningBlock &Block : RoundBlocks) {
        if (Block.isIdentity() || Store.contains(Block.id()))
          continue;
        if (Cache.enabled() && Cache.fetch(Block.id(), Store))
          continue;
        Pending.push_back(Block);
      }
      PendingBlockCount = Pending.size();
      Groups = partitionIntoGroups(std::move(Pending));
      for (size_t G = 0; G < Groups.size(); ++G) {
        GroupRngs.emplace_back(pretrainGroupSeed(BaseSeed, Groups[G]));
        for (const TuningBlock &Block : Groups[G])
          GroupOfBlock[Block.id()] = G;
      }
    }

    const size_t Count = Proposals.size();
    std::vector<uint64_t> Seeds(Count);
    for (uint64_t &Seed : Seeds)
      Seed = Generator.next();
    const size_t Base = Run.Evaluations.size();
    Run.Evaluations.resize(Base + Count);

    auto evaluateOne = [&](size_t P) -> Error {
      std::vector<TuningBlock> Composite;
      if (Options.UseComposability)
        for (int BlockIndex : CompositeVectors[P])
          Composite.push_back(RoundBlocks[BlockIndex]);
      Result<EvaluatedConfig> Evaluated = Engine.evaluateConfig(
          Proposals[P], Options.UseComposability ? &Composite : nullptr,
          Seeds[P]);
      if (!Evaluated)
        return Evaluated.takeError();
      Run.Evaluations[Base + P] = Evaluated.take();
      return Error::success();
    };

    std::vector<bool> WasCancelled(Count, false);
    if (Overlap) {
      TaskGraph Graph(&Log);
      std::vector<GroupPretrainStats> GroupStats(Groups.size());

      std::vector<std::vector<size_t>> EvalGroups(Count);
      std::vector<size_t> GroupMinPos(Groups.size(), Count);
      for (size_t P = 0; P < Count; ++P) {
        std::set<size_t> NeededGroups;
        if (Options.UseComposability)
          for (int BlockIndex : CompositeVectors[P]) {
            auto It = GroupOfBlock.find(RoundBlocks[BlockIndex].id());
            if (It != GroupOfBlock.end())
              NeededGroups.insert(It->second);
          }
        EvalGroups[P].assign(NeededGroups.begin(), NeededGroups.end());
        for (size_t G : NeededGroups)
          GroupMinPos[G] = std::min(GroupMinPos[G], P);
      }

      std::vector<TaskId> GroupTask(Groups.size());
      for (size_t G = 0; G < Groups.size(); ++G)
        GroupTask[G] = Graph.add(
            "pretrain:g" + std::to_string(GroupCounter + G), {},
            -static_cast<int>(GroupMinPos[G]), [&, G]() -> Error {
              if (Engine.cancelRequested())
                return Error::failure("job cancelled");
              Result<GroupPretrainStats> Stats = pretrainGroup(
                  Engine.model(), Engine.teacher(), "full", Groups[G],
                  Data, Meta, Store, GroupRngs[G], &Engine.scores(),
                  &Cache);
              if (!Stats)
                return Stats.takeError();
              GroupStats[G] = *Stats;
              return Error::success();
            });

      std::vector<TaskId> EvalTask(Count);
      for (size_t P = 0; P < Count; ++P) {
        std::vector<TaskId> Deps;
        for (size_t G : EvalGroups[P])
          Deps.push_back(GroupTask[G]);
        EvalTask[P] = Graph.add(
            "eval:" + std::to_string(EvalCounter + P), std::move(Deps),
            -static_cast<int>(P), [&, P]() -> Error {
              if (Error E = evaluateOne(P))
                return E;
              // Preference-ordered rounds: once this proposal satisfies
              // the objective, nothing later in the round can beat it.
              if (CancelWithinRound) {
                const EvaluatedConfig &Mine = Run.Evaluations[Base + P];
                if (Options.CancelObjective->satisfied(
                        Mine.WeightCount, Mine.FinalAccuracy)) {
                  for (size_t Later = P + 1; Later < Count; ++Later)
                    Graph.cancel(EvalTask[Later]);
                  for (size_t G = 0; G < Groups.size(); ++G)
                    if (GroupMinPos[G] > P)
                      Graph.cancel(GroupTask[G]);
                }
              }
              return Error::success();
            });
      }

      if (Error E = Graph.run(Workers))
        return E;

      for (size_t P = 0; P < Count; ++P)
        WasCancelled[P] = Graph.state(EvalTask[P]) == TaskState::Cancelled;

      Run.Pretrain.BlockCount += static_cast<int>(PendingBlockCount);
      Run.Pretrain.GroupCount += static_cast<int>(Groups.size());
      for (size_t G = 0; G < Groups.size(); ++G) {
        if (Graph.state(GroupTask[G]) != TaskState::Done)
          continue;
        Info.BlocksTrained += static_cast<int>(Groups[G].size());
        Run.Pretrain.GroupSeconds.push_back(GroupStats[G].Seconds);
        Run.Pretrain.Seconds += GroupStats[G].Seconds;
        FirstLossSum += GroupStats[G].FirstLoss;
        LastLossSum += GroupStats[G].LastLoss;
        ++LossGroups;
      }
    } else if (Workers > 1) {
      TaskGraph Graph(&Log);
      for (size_t P = 0; P < Count; ++P)
        Graph.add("eval:" + std::to_string(EvalCounter + P), {},
                  -static_cast<int>(P), [&, P]() { return evaluateOne(P); });
      if (Error E = Graph.run(Workers))
        return E;
    } else {
      std::string FirstError;
      for (size_t P = 0; P < Count; ++P) {
        const double StartAt = Log.now();
        Error E = evaluateOne(P);
        SpanEvent Span;
        Span.Name = "eval:" + std::to_string(EvalCounter + P);
        Span.ReadyAt = StartAt;
        Span.StartAt = StartAt;
        Span.EndAt = Log.now();
        Span.Status = E ? "failed" : "done";
        if (E)
          Span.Detail = E.message();
        Log.record(std::move(Span));
        Log.bump(E ? "tasks_failed" : "tasks_done");
        if (E && FirstError.empty())
          FirstError = E.message();
      }
      if (!FirstError.empty())
        return Error::failure(FirstError);
    }

    // Cancelled proposals still appear in the observed sequence (the
    // strategy skips them), with the size fields the config determines.
    for (size_t P = 0; P < Count; ++P) {
      if (!WasCancelled[P])
        continue;
      EvaluatedConfig &E = Run.Evaluations[Base + P];
      E.Cancelled = true;
      E.Config = Proposals[P];
      E.WeightCount = modelWeightCount(Spec, Proposals[P]);
      E.SizeFraction = static_cast<double>(E.WeightCount) /
                       static_cast<double>(Run.FullWeightCount);
    }

    Info.BlocksReused = static_cast<int>(NeededBlockUses) -
                        Info.BlocksTrained;
    Log.bump("strategy.blocks_reused", Info.BlocksReused);
    Out.BlocksReused += Info.BlocksReused;
    Out.Proposals += Info.Proposals;
    ++Out.Rounds;
    Out.RoundsInfo.push_back(Info);
    EvalCounter += Count;
    GroupCounter += Groups.size();
  }

  if (LossGroups > 0) {
    Run.Pretrain.FirstLoss = FirstLossSum / LossGroups;
    Run.Pretrain.LastLoss = LastLossSum / LossGroups;
  }

  // The winner: best objective-satisfying evaluation in the objective's
  // own preference; earliest proposal on ties.
  for (size_t I = 0; I < Run.Evaluations.size(); ++I) {
    const EvaluatedConfig &E = Run.Evaluations[I];
    if (E.Cancelled || !Objective.satisfied(E.WeightCount, E.FinalAccuracy))
      continue;
    Out.ObjectiveMet = true;
    if (Out.WinnerIndex < 0 ||
        preferredOver(E, Run.Evaluations[Out.WinnerIndex], Objective))
      Out.WinnerIndex = static_cast<int>(I);
  }

  for (const EvaluatedConfig &E : Run.Evaluations)
    Run.EvaluationSeconds += E.TrainSeconds;
  Run.Telemetry = Log.snapshot();
  if (!Options.TelemetryPath.empty())
    if (Error E = Log.writeJsonl(Options.TelemetryPath))
      return E;
  return Out;
}
