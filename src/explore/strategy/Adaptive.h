//===- explore/strategy/Adaptive.h - Result-driven adaptive explorer --------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Play-and-Prune-style adaptive explorer (Singh et al.): no
/// pre-specified per-layer rates — each round proposes a small beam of
/// pruning moves of decreasing aggressiveness, derived from what the
/// observed accuracies earned so far:
///
///  * a per-module penalty tracks how much accuracy past bumps of that
///    module cost; the lowest-penalty modules are bumped next;
///  * a step size K (modules bumped at once) adapts to the results —
///    it follows the most aggressive accepted proposal and halves after
///    a failed round, and the 2K probe is only proposed while the last
///    accepted accuracy clears the constraint floor by AccuracyMargin;
///  * the most aggressive (smallest) proposal whose accuracy holds the
///    floor is committed; the search ends when an observed result
///    satisfies the full objective (size cap included), when rounds run
///    out, when every module is at the heaviest rate, or after three
///    consecutive rounds with no acceptable proposal.
///
/// Proposals within a round are nested (the K-module bump extends the
/// K/2-module bump), so they are emitted smallest-model-first — the
/// driver can cancel the rest of a round once an earlier proposal
/// satisfies a min-ModelSize cancellation objective. Tuning blocks are
/// (module, rate) pairs, so every proposal that keeps a module's
/// committed rate reuses the block pre-trained when that rate was first
/// tried — the cross-proposal reuse the paper's subspace pipeline gets,
/// harvested without a subspace.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_EXPLORE_STRATEGY_ADAPTIVE_H
#define WOOTZ_EXPLORE_STRATEGY_ADAPTIVE_H

#include "src/explore/strategy/Strategy.h"

#include <set>

namespace wootz {

class AdaptiveStrategy : public ExplorationStrategy {
public:
  /// \p Knobs.Rates must be validated by the caller (makeStrategy does);
  /// \p Knobs.MaxRounds bounds the proposal rounds and
  /// \p Knobs.AccuracyMargin gates the aggressive 2K probe.
  AdaptiveStrategy(const ModelSpec &Spec,
                   const PruningObjective &Objective,
                   const StrategyKnobs &Knobs);

  const char *name() const override { return "adaptive"; }
  /// Nested beams descend in model size, so the order matches a
  /// smallest-first objective's preference; for a max-Accuracy objective
  /// it does not, and the driver must not cancel within a round.
  bool proposalsPreferenceOrdered() const override {
    return Objective.exploreSmallestFirst();
  }
  Result<std::vector<PruneConfig>>
  propose(const ObservedResults &Observed) override;

private:
  PruneConfig configBumping(const std::vector<int> &Modules) const;

  PruningObjective Objective;
  int ModuleCount;
  std::vector<float> Rates;
  int MaxRounds;
  double Margin;
  double Threshold;

  std::vector<int> RateIndex;   ///< Committed rate index per module.
  std::vector<double> Penalty;  ///< Accumulated accuracy blame per module.
  int Step = 1;                 ///< Modules bumped by the accepted pace.
  int Round = 0;
  int FailStreak = 0;
  double LastAcceptedAccuracy = 0.0;
  std::vector<std::vector<int>> RoundBumped; ///< Per live proposal.
  size_t RoundStart = 0;
  std::set<PruneConfig> ProposedEver; ///< Never re-propose a config.
  bool Finished = false;
};

} // namespace wootz

#endif // WOOTZ_EXPLORE_STRATEGY_ADAPTIVE_H
