//===- explore/strategy/FixedSubspace.cpp -------------------------------------===//

#include "src/explore/strategy/FixedSubspace.h"

#include <algorithm>

using namespace wootz;

FixedSubspaceStrategy::FixedSubspaceStrategy(
    const ModelSpec &Spec, std::vector<PruneConfig> Subspace,
    const PruningObjective &Objective)
    : Ordered(std::move(Subspace)) {
  // The identical sort call runPruningPipeline makes, so ties land in the
  // same order and the bit-exactness guarantee holds.
  std::sort(Ordered.begin(), Ordered.end(),
            [&](const PruneConfig &A, const PruneConfig &B) {
              return modelWeightCount(Spec, A) < modelWeightCount(Spec, B);
            });
  if (!Objective.exploreSmallestFirst())
    std::reverse(Ordered.begin(), Ordered.end());
}

Result<std::vector<PruneConfig>>
FixedSubspaceStrategy::propose(const ObservedResults &) {
  if (Proposed)
    return std::vector<PruneConfig>{};
  if (Ordered.empty())
    return Error::failure("the promising subspace is empty");
  Proposed = true;
  return Ordered;
}
