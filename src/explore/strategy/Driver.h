//===- explore/strategy/Driver.h - Strategy-driven exploration runs ---------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// runStrategyExploration() drives any ExplorationStrategy through the
/// shared ExplorationEngine: each round it asks the strategy for the
/// next configurations, chooses and pre-trains the tuning blocks those
/// proposals are missing (everything already in the store or the
/// cross-run BlockCache is reused), evaluates the proposals on the
/// runtime TaskGraph under the configured schedule, and feeds the
/// results back for the next round — the proposal loop the paper leaves
/// as future work, running on the same machinery as the fixed-subspace
/// pipeline.
///
/// Determinism mirrors runPruningPipeline: the engine's preparation
/// draws first, then per round one pretrainBlocks draw (EvalOnly) or one
/// base seed expanded per group via pretrainGroupSeed (Overlap), then
/// one pre-drawn seed per proposal in proposal order. Since strategies
/// are pure functions of the observed results, a rerun from the same
/// generator seed reproduces every proposal and every evaluation
/// bit-exactly — for any Workers value under EvalOnly, and regardless of
/// how many blocks a warm BlockCache satisfied.
///
/// Cancellation: under Overlap with a CancelObjective, once a finished
/// proposal satisfies the objective the rest of its round is cancelled —
/// but only when the strategy declares its rounds preference-ordered
/// (proposalsPreferenceOrdered()); an unordered round must finish, since
/// a later proposal could still win.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_EXPLORE_STRATEGY_DRIVER_H
#define WOOTZ_EXPLORE_STRATEGY_DRIVER_H

#include "src/explore/strategy/Strategy.h"

namespace wootz {

/// Per-round bookkeeping (RunLog counters "strategy.rounds",
/// "strategy.proposals" and "strategy.blocks_reused" carry the same
/// numbers live).
struct StrategyRoundInfo {
  /// Index of the round's first proposal in
  /// StrategyRunResult::Run.Evaluations.
  size_t FirstIndex = 0;
  int Proposals = 0;
  /// Tuning blocks freshly pre-trained for this round.
  int BlocksTrained = 0;
  /// Non-identity block uses served by the store or cache instead of
  /// fresh pre-training (a block's first use counts as trained, every
  /// further use as reused).
  int BlocksReused = 0;
};

/// Everything a strategy-driven run produced.
struct StrategyRunResult {
  /// Shared result shape with runPruningPipeline — except Evaluations
  /// are in *proposal order* (cancelled entries flagged), not sorted by
  /// size, and Blocks accumulates every distinct block any round chose.
  PipelineResult Run;
  int Rounds = 0;
  int Proposals = 0;
  int BlocksReused = 0;
  std::vector<StrategyRoundInfo> RoundsInfo;
  /// Proposal index of the best evaluation satisfying the objective
  /// (smallest WeightCount for min-ModelSize, highest accuracy for
  /// max-Accuracy; ties to the earliest proposal), -1 when none did.
  int WinnerIndex = -1;
  bool ObjectiveMet = false;
};

/// Runs \p Strategy to completion on \p Data. \p Options is interpreted
/// exactly as by runPruningPipeline (schedule, workers, composability,
/// caches, telemetry, cancellation token); \p Objective picks the winner
/// and is what adaptive strategies steer toward — pass the same
/// objective as Options.CancelObjective to also cancel within rounds.
Result<StrategyRunResult> runStrategyExploration(
    const ModelSpec &Spec, const Dataset &Data,
    ExplorationStrategy &Strategy, const TrainMeta &Meta,
    const PipelineOptions &Options, const PruningObjective &Objective,
    Rng &Generator);

} // namespace wootz

#endif // WOOTZ_EXPLORE_STRATEGY_DRIVER_H
