//===- explore/strategy/GreedySensitivity.h - Greedy sensitivity search -----===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The greedy sensitivity search of explore/Iterative.h refactored
/// behind the strategy interface. Starting from the unpruned
/// configuration, each round proposes every single-module rate bump
/// along the alphabet; after observing the round it commits the bump
/// with the highest fine-tuned accuracy that stays at or above the
/// objective's accuracy floor, and stops when no bump qualifies, the
/// commit budget is spent, or every module sits at the heaviest rate.
/// runIterativeExploration() is now a thin wrapper over this strategy
/// plus the driver.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_EXPLORE_STRATEGY_GREEDYSENSITIVITY_H
#define WOOTZ_EXPLORE_STRATEGY_GREEDYSENSITIVITY_H

#include "src/explore/strategy/Strategy.h"

namespace wootz {

class GreedySensitivityStrategy : public ExplorationStrategy {
public:
  /// One committed rate bump.
  struct Commit {
    int Module = 0;          ///< Module whose rate was bumped.
    float Rate = 0.0f;       ///< New rate of that module.
    size_t ObservedIndex = 0;///< The winning proposal's observed index.
    PruneConfig Config;      ///< Configuration after the commit.
  };

  /// \p Knobs.Rates must be validated by the caller (makeStrategy does);
  /// \p Knobs.MaxRounds bounds the committed bumps.
  GreedySensitivityStrategy(const ModelSpec &Spec,
                            const PruningObjective &Objective,
                            const StrategyKnobs &Knobs);

  const char *name() const override { return "greedy"; }
  // A greedy round needs EVERY candidate's accuracy before it can pick
  // the best — proposals carry no preference order, so the driver must
  // not cancel within a round (the default false says so).
  Result<std::vector<PruneConfig>>
  propose(const ObservedResults &Observed) override;

  /// The committed trajectory so far (runIterativeExploration rebuilds
  /// its IterativeResult from this).
  const std::vector<Commit> &commits() const { return Commits; }

private:
  int ModuleCount;
  std::vector<float> Rates;
  int MaxCommits;
  double Threshold;

  std::vector<int> RateIndex; ///< Per module, index into Rates.
  PruneConfig Current;
  std::vector<int> RoundModules; ///< Module bumped by each live proposal.
  size_t RoundStart = 0;
  std::vector<Commit> Commits;
  bool Started = false;
  bool Finished = false;
};

} // namespace wootz

#endif // WOOTZ_EXPLORE_STRATEGY_GREEDYSENSITIVITY_H
