//===- explore/strategy/Adaptive.cpp ------------------------------------------===//

#include "src/explore/strategy/Adaptive.h"

#include <algorithm>

using namespace wootz;

AdaptiveStrategy::AdaptiveStrategy(const ModelSpec &Spec,
                                   const PruningObjective &Objective,
                                   const StrategyKnobs &Knobs)
    : Objective(Objective), ModuleCount(Spec.moduleCount()),
      Rates(Knobs.Rates.empty() ? standardRates() : Knobs.Rates),
      MaxRounds(Knobs.MaxRounds), Margin(Knobs.AccuracyMargin),
      Threshold(objectiveAccuracyFloor(Objective)),
      RateIndex(ModuleCount, 0), Penalty(ModuleCount, 0.0) {}

PruneConfig
AdaptiveStrategy::configBumping(const std::vector<int> &Modules) const {
  PruneConfig Config(ModuleCount);
  for (int M = 0; M < ModuleCount; ++M)
    Config[M] = Rates[RateIndex[M]];
  for (int M : Modules)
    Config[M] = Rates[RateIndex[M] + 1];
  return Config;
}

Result<std::vector<PruneConfig>>
AdaptiveStrategy::propose(const ObservedResults &Observed) {
  if (Finished)
    return std::vector<PruneConfig>{};

  if (Round > 0) {
    // Digest the previous round. Proposals descend in aggressiveness, so
    // the first one holding the accuracy floor is the most aggressive
    // acceptable move.
    int AcceptedAt = -1;
    double AcceptedAccuracy = 0.0;
    bool SawSatisfied = false;
    for (size_t I = 0; I < RoundBumped.size(); ++I) {
      const EvaluatedConfig &E = Observed[RoundStart + I];
      if (E.Cancelled)
        continue;
      if (Objective.satisfied(E.WeightCount, E.FinalAccuracy))
        SawSatisfied = true;
      if (AcceptedAt < 0 && E.FinalAccuracy >= Threshold) {
        AcceptedAt = static_cast<int>(I);
        AcceptedAccuracy = E.FinalAccuracy;
      }
    }
    if (AcceptedAt >= 0) {
      for (int M : RoundBumped[AcceptedAt]) {
        ++RateIndex[M];
        // Surviving a bump halves the module's blame: it earned trust.
        Penalty[M] *= 0.5;
      }
      Step = static_cast<int>(RoundBumped[AcceptedAt].size());
      FailStreak = 0;
      LastAcceptedAccuracy = AcceptedAccuracy;
    } else {
      ++FailStreak;
      Step = std::max(1, Step / 2);
      // Blame every bumped module for its proposal's accuracy deficit —
      // high-penalty modules are tried last from now on.
      for (size_t I = 0; I < RoundBumped.size(); ++I) {
        const EvaluatedConfig &E = Observed[RoundStart + I];
        if (E.Cancelled || RoundBumped[I].empty())
          continue;
        const double Deficit =
            std::max(Threshold - E.FinalAccuracy, 1e-6);
        for (int M : RoundBumped[I])
          Penalty[M] += Deficit / static_cast<double>(RoundBumped[I].size());
      }
    }
    // An observed result satisfied the full objective (including any
    // model-size cap): the driver will pick the winner; stop proposing.
    if (SawSatisfied || FailStreak >= 3) {
      Finished = true;
      return std::vector<PruneConfig>{};
    }
  }

  if (Round >= MaxRounds) {
    Finished = true;
    return std::vector<PruneConfig>{};
  }

  // Modules with alphabet headroom, least-blamed first (ties: later
  // modules first — deeper layers are heuristically safer to prune).
  std::vector<int> Available;
  for (int M = 0; M < ModuleCount; ++M)
    if (RateIndex[M] + 1 < static_cast<int>(Rates.size()))
      Available.push_back(M);
  if (Available.empty()) {
    Finished = true;
    return std::vector<PruneConfig>{};
  }
  std::stable_sort(Available.begin(), Available.end(), [&](int A, int B) {
    if (Penalty[A] != Penalty[B])
      return Penalty[A] < Penalty[B];
    return A > B;
  });

  // The beam: up to three nested moves of decreasing aggressiveness.
  // The 2K probe runs only while the last accepted accuracy clears the
  // floor by the confidence margin (and never right after a failure).
  const int Avail = static_cast<int>(Available.size());
  std::vector<int> Levels;
  const bool Confident =
      Round == 0 ||
      (FailStreak == 0 && LastAcceptedAccuracy >= Threshold + Margin);
  for (int Level : {Confident ? Step * 2 : 0, Step, std::max(1, Step / 2)}) {
    Level = std::min(Level, Avail);
    if (Level >= 1 &&
        std::find(Levels.begin(), Levels.end(), Level) == Levels.end())
      Levels.push_back(Level);
  }

  std::vector<PruneConfig> Proposals;
  RoundBumped.clear();
  for (int Level : Levels) {
    std::vector<int> Modules(Available.begin(), Available.begin() + Level);
    PruneConfig Candidate = configBumping(Modules);
    if (!ProposedEver.insert(Candidate).second)
      continue; // Already tried (and evidently not accepted).
    Proposals.push_back(std::move(Candidate));
    RoundBumped.push_back(std::move(Modules));
  }
  if (Proposals.empty()) {
    // Every move at the current pace was already tried and rejected.
    Finished = true;
    return std::vector<PruneConfig>{};
  }
  RoundStart = Observed.size();
  ++Round;
  return Proposals;
}
