//===- explore/strategy/FixedSubspace.h - Enumerated-subspace strategy ------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's own exploration as a strategy: one round proposing the
/// whole enumerated promising subspace in the objective's exploration
/// order (§6.2 — ascending model size for min-ModelSize, descending for
/// max-Accuracy), then done. Behavior-preserving: driving this strategy
/// through runStrategyExploration with the EvalOnly schedule reproduces
/// runPruningPipeline bit-exactly (same draw order, same per-proposal
/// seeds).
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_EXPLORE_STRATEGY_FIXEDSUBSPACE_H
#define WOOTZ_EXPLORE_STRATEGY_FIXEDSUBSPACE_H

#include "src/explore/strategy/Strategy.h"

namespace wootz {

class FixedSubspaceStrategy : public ExplorationStrategy {
public:
  FixedSubspaceStrategy(const ModelSpec &Spec,
                        std::vector<PruneConfig> Subspace,
                        const PruningObjective &Objective);

  const char *name() const override { return "fixed"; }
  /// The single round is emitted in exploration order, which IS the
  /// objective's preference order.
  bool proposalsPreferenceOrdered() const override { return true; }
  Result<std::vector<PruneConfig>>
  propose(const ObservedResults &Observed) override;

private:
  std::vector<PruneConfig> Ordered;
  bool Proposed = false;
};

} // namespace wootz

#endif // WOOTZ_EXPLORE_STRATEGY_FIXEDSUBSPACE_H
