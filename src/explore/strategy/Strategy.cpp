//===- explore/strategy/Strategy.cpp ------------------------------------------===//

#include "src/explore/strategy/Strategy.h"

#include "src/explore/strategy/Adaptive.h"
#include "src/explore/strategy/FixedSubspace.h"
#include "src/explore/strategy/GreedySensitivity.h"

#include <algorithm>

using namespace wootz;

const char *wootz::strategyKindName(StrategyKind Kind) {
  switch (Kind) {
  case StrategyKind::Fixed:
    return "fixed";
  case StrategyKind::Greedy:
    return "greedy";
  case StrategyKind::Adaptive:
    return "adaptive";
  }
  return "unknown";
}

Result<StrategyKind> wootz::parseStrategyKind(const std::string &Name) {
  if (Name == "fixed")
    return StrategyKind::Fixed;
  if (Name == "greedy")
    return StrategyKind::Greedy;
  if (Name == "adaptive")
    return StrategyKind::Adaptive;
  return Error::failure("unknown exploration strategy '" + Name +
                        "' (expected fixed, greedy or adaptive)");
}

double wootz::objectiveAccuracyFloor(const PruningObjective &Objective) {
  double Floor = 0.0;
  for (const ObjectiveConstraint &C : Objective.Constraints)
    if (C.Which == Metric::Accuracy &&
        (C.Op == CompareOp::GE || C.Op == CompareOp::GT))
      Floor = std::max(Floor, C.Value);
  return Floor;
}

Result<std::unique_ptr<ExplorationStrategy>>
wootz::makeStrategy(StrategyKind Kind, const ModelSpec &Spec,
                    const std::vector<PruneConfig> &Subspace,
                    const PruningObjective &Objective,
                    const StrategyKnobs &Knobs) {
  if (Kind == StrategyKind::Fixed) {
    if (Subspace.empty())
      return Error::failure("the promising subspace is empty");
    return std::unique_ptr<ExplorationStrategy>(
        new FixedSubspaceStrategy(Spec, Subspace, Objective));
  }

  // The on-the-fly strategies walk a rate alphabet instead of a
  // subspace; validate it with the iterative search's exact rules (and
  // messages — tests rely on them).
  const std::vector<float> &Rates =
      Knobs.Rates.empty() ? standardRates() : Knobs.Rates;
  if (Rates.size() < 2 || Rates.front() != 0.0f)
    return Error::failure("the rate alphabet must start at 0 and contain "
                          "at least one pruned rate");
  if (!std::is_sorted(Rates.begin(), Rates.end()))
    return Error::failure("the rate alphabet must be ascending");
  if (Knobs.MaxRounds < 1)
    return Error::failure("StrategyKnobs::MaxRounds must be positive, got " +
                          std::to_string(Knobs.MaxRounds));

  if (Kind == StrategyKind::Greedy)
    return std::unique_ptr<ExplorationStrategy>(
        new GreedySensitivityStrategy(Spec, Objective, Knobs));
  return std::unique_ptr<ExplorationStrategy>(
      new AdaptiveStrategy(Spec, Objective, Knobs));
}
