//===- explore/strategy/GreedySensitivity.cpp ---------------------------------===//

#include "src/explore/strategy/GreedySensitivity.h"

using namespace wootz;

GreedySensitivityStrategy::GreedySensitivityStrategy(
    const ModelSpec &Spec, const PruningObjective &Objective,
    const StrategyKnobs &Knobs)
    : ModuleCount(Spec.moduleCount()),
      Rates(Knobs.Rates.empty() ? standardRates() : Knobs.Rates),
      MaxCommits(Knobs.MaxRounds),
      Threshold(objectiveAccuracyFloor(Objective)),
      RateIndex(ModuleCount, 0), Current(ModuleCount, 0.0f) {}

Result<std::vector<PruneConfig>>
GreedySensitivityStrategy::propose(const ObservedResults &Observed) {
  if (Finished)
    return std::vector<PruneConfig>{};

  if (Started) {
    // Digest the previous round: commit the qualifying bump with the
    // highest accuracy (ties go to the lowest module, like the original
    // iterative search's strict-improvement rule).
    double BestAccuracy = -1.0;
    int BestAt = -1;
    for (size_t I = 0; I < RoundModules.size(); ++I) {
      const EvaluatedConfig &E = Observed[RoundStart + I];
      if (E.Cancelled)
        continue;
      if (E.FinalAccuracy >= Threshold && E.FinalAccuracy > BestAccuracy) {
        BestAccuracy = E.FinalAccuracy;
        BestAt = static_cast<int>(I);
      }
    }
    if (BestAt < 0) {
      // No bump keeps the constraint: the search has converged.
      Finished = true;
      return std::vector<PruneConfig>{};
    }
    const int Module = RoundModules[BestAt];
    ++RateIndex[Module];
    Current[Module] = Rates[RateIndex[Module]];
    Commits.push_back({Module, Rates[RateIndex[Module]],
                       RoundStart + static_cast<size_t>(BestAt), Current});
    if (static_cast<int>(Commits.size()) >= MaxCommits) {
      Finished = true;
      return std::vector<PruneConfig>{};
    }
  }

  // Propose every single-module bump with headroom on the alphabet.
  Started = true;
  RoundModules.clear();
  std::vector<PruneConfig> Proposals;
  for (int Module = 0; Module < ModuleCount; ++Module) {
    if (RateIndex[Module] + 1 >= static_cast<int>(Rates.size()))
      continue; // Already at the heaviest rate.
    PruneConfig Candidate = Current;
    Candidate[Module] = Rates[RateIndex[Module] + 1];
    Proposals.push_back(std::move(Candidate));
    RoundModules.push_back(Module);
  }
  if (Proposals.empty()) {
    Finished = true;
    return std::vector<PruneConfig>{};
  }
  RoundStart = Observed.size();
  return Proposals;
}
