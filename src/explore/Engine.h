//===- explore/Engine.h - Shared exploration machinery ----------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machinery every exploration front end shares: the classic
/// fixed-subspace pipeline (runPruningPipeline) and the strategy driver
/// (runStrategyExploration) both prepare one trained full model, score
/// filter importances once, bind the cross-run block cache, and then
/// build + fine-tune pruned networks one configuration at a time.
/// ExplorationEngine owns exactly that shared state so the two paths
/// cannot drift apart; each caller keeps its own orchestration (subspace
/// sort, tuning-block choice, TaskGraph wiring, cancellation rules) on
/// top.
///
/// Determinism contract: prepare() draws from the caller's generator in
/// a fixed order (full-model preparation only; filter scoring uses its
/// own fixed-seed sampler), and evaluateConfig() draws nothing from it —
/// every evaluation derives all randomness from its pre-drawn seed. This
/// is what makes results bit-identical across Workers values and across
/// warm/cold block-cache runs.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_EXPLORE_ENGINE_H
#define WOOTZ_EXPLORE_ENGINE_H

#include "src/explore/Pipeline.h"
#include "src/train/BlockCache.h"

#include <optional>

namespace wootz {

/// Shared state and steps of one exploration run. Construct, call
/// prepare() once, then evaluateConfig() per configuration (thread-safe
/// across configurations: evaluations share only the teacher's read-only
/// parameters and the scores/store, exactly as the pipeline always did).
class ExplorationEngine {
public:
  ExplorationEngine(const ModelSpec &Spec, const Dataset &Data,
                    const TrainMeta &Meta, const PipelineOptions &Options);

  /// The telemetry sink: the caller-supplied log when
  /// PipelineOptions::Log is set, a run-local one otherwise.
  RunLog &log() { return Log; }

  /// True when the caller's CancelToken has been flipped.
  bool cancelRequested() const {
    return Options.Cancel && Options.Cancel->cancelled();
  }

  /// Phase 0: the trained full model every pruned network derives from,
  /// filter importances (a property of that model, scored once), and the
  /// block-cache context binding. Fills \p Run's FullAccuracy and
  /// FullWeightCount. Fails with "job cancelled before it started" when
  /// cancellation raced the submission.
  Error prepare(PipelineResult &Run, Rng &Generator);

  const MultiplexingModel &model() const { return Model; }
  /// The trained full model's graph (valid after prepare()).
  Graph &teacher() { return Full->Network; }
  const FilterScores &scores() const { return ScoreMap; }
  CheckpointStore &store() { return Store; }
  BlockCache &blockCache() { return Cache; }
  size_t fullWeightCount() const { return FullWeightCount; }

  /// Builds, initializes and fine-tunes \p Config with the pre-drawn
  /// \p Seed. \p Composite lists the tuning blocks to overlay from the
  /// store (null for baseline default networks). Fails with
  /// "job cancelled" when the token flipped before work started.
  Result<EvaluatedConfig>
  evaluateConfig(const PruneConfig &Config,
                 const std::vector<TuningBlock> *Composite, uint64_t Seed);

private:
  const ModelSpec &Spec;
  const Dataset &Data;
  const TrainMeta &Meta;
  const PipelineOptions &Options;
  const MultiplexingModel Model;
  // Telemetry goes to the caller's log when one is supplied (live
  // observers sample it mid-run); otherwise to the run-local OwnLog.
  RunLog OwnLog;
  RunLog &Log;
  CheckpointStore Store;
  BlockCache Cache;
  std::optional<FullModel> Full;
  FilterScores ScoreMap;
  size_t FullWeightCount = 0;
};

} // namespace wootz

#endif // WOOTZ_EXPLORE_ENGINE_H
