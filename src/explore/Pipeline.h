//===- explore/Pipeline.h - End-to-end pruning pipeline ------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end pipeline behind the evaluation section: prepare the
/// full model, (optionally) identify and pre-train tuning blocks, then
/// evaluate every configuration of the promising subspace in exploration
/// order — as the baseline ("default networks") or the composability-
/// based method ("block-trained networks"). Per-configuration results
/// feed summarizeExploration(), which replays the paper's multi-node
/// schedule against an objective to produce Table 3/4/5 rows without
/// retraining anything.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_EXPLORE_PIPELINE_H
#define WOOTZ_EXPLORE_PIPELINE_H

#include "src/explore/Cluster.h"
#include "src/explore/Objective.h"
#include "src/runtime/Cancel.h"
#include "src/runtime/RunLog.h"
#include "src/train/Assembly.h"
#include "src/train/ModelZoo.h"
#include "src/train/Pretrainer.h"

#include <memory>

namespace wootz {

/// One evaluated configuration of the promising subspace.
struct EvaluatedConfig {
  PruneConfig Config;
  size_t WeightCount = 0;
  double SizeFraction = 0.0; ///< WeightCount / full model's.
  double InitAccuracy = 0.0; ///< Before fine-tuning (init / init+).
  double FinalAccuracy = 0.0;
  int StepsToBest = 0;
  double TrainSeconds = 0.0;
  std::vector<AccuracyPoint> Curve; ///< Kept when Options.KeepCurves.
  std::vector<std::string> BlocksUsed;
  /// True when the runtime cancelled this evaluation before it started
  /// (a smaller config already satisfied Options.CancelObjective); the
  /// accuracy/timing fields are meaningless then.
  bool Cancelled = false;
  /// The fine-tuned network itself, retained only when
  /// PipelineOptions::KeepNetworks — the serving layer registers the
  /// winning pruned network from here. Shared so EvaluatedConfig stays
  /// copyable (Graph is move-only).
  std::shared_ptr<AssembledNetwork> Network;
};

/// How runPruningPipeline schedules pre-training and evaluation.
enum class PipelineSchedule {
  /// Pre-train block groups serially (in partition order, exactly like
  /// the paper's per-node wrapper), then evaluate configurations —
  /// across Workers when possible. Results are bit-identical to the
  /// Workers == 1 run because per-configuration seeds are drawn up
  /// front.
  EvalOnly,
  /// Block-ready overlap: block groups and configuration evaluations
  /// form one dependency graph on the runtime scheduler. An evaluation
  /// starts as soon as the groups its composite vector draws from are
  /// trained — early (small) configs fine-tune while unrelated blocks
  /// still pre-train — and once a finished configuration provably
  /// satisfies Options.CancelObjective, every not-yet-started
  /// evaluation that cannot beat it is cancelled. Each group and each
  /// evaluation gets its own pre-drawn seed, so results are
  /// deterministic for a given subspace but differ from EvalOnly.
  Overlap,
};

/// Pipeline knobs.
struct PipelineOptions {
  /// false: baseline (train default networks); true: composability-based.
  bool UseComposability = false;
  /// Blocks from the hierarchical identifier instead of one block per
  /// pruned module (only meaningful with UseComposability).
  bool UseIdentifier = false;
  /// Directory for the trained-full-model cache; empty disables caching.
  std::string CacheDir;
  /// Cross-run tuning-block cache (see train/BlockCache.h): blocks
  /// already on disk for this (teacher, hyperparameters) context skip
  /// pre-training entirely, and freshly trained blocks are published
  /// back. Empty Directory disables it. Hits land the cached weights in
  /// place of freshly trained ones, so a warm run's evaluations match a
  /// prior run's, not a cold run with a different seed.
  CacheConfig BlockCacheConfig;
  /// Filter-importance criterion for weight inheritance and block
  /// initialization (the paper uses l1 norms; §8 surveys the others).
  ImportanceCriterion Criterion = ImportanceCriterion::L1Norm;
  /// Weight of the knowledge-distillation term during fine-tuning
  /// (0 disables; the trained full model is the teacher). The §8-cited
  /// whole-network Teacher-Student scheme, composable with block
  /// pre-training.
  float DistillAlpha = 0.0f;
  float DistillTemperature = 2.0f;
  /// Retain per-config accuracy curves (Figure 6/7 benches).
  bool KeepCurves = false;
  /// Worker threads (the in-process substitute for the paper's MPI
  /// ranks). 1 runs serially; 0 means "one per hardware thread";
  /// negative values are rejected with an error. With the default
  /// EvalOnly schedule, results are identical for every Workers value
  /// (per-configuration seeds are drawn up front) — only the
  /// per-configuration *timings* change, so keep Workers = 1 when the
  /// measured costs feed summarizeExploration() on an oversubscribed
  /// machine.
  int Workers = 1;
  /// See PipelineSchedule.
  PipelineSchedule Schedule = PipelineSchedule::EvalOnly;
  /// Overlap only: when a completed configuration satisfies this
  /// objective, evaluations later in the exploration order (which
  /// cannot beat it) are cancelled. Null disables cancellation. Must
  /// outlive the run.
  const PruningObjective *CancelObjective = nullptr;
  /// When non-empty, the run's telemetry is also written there as JSONL
  /// (one span object per task, then one counters object).
  std::string TelemetryPath;
  /// External telemetry sink. When non-null, spans and counters are
  /// recorded there instead of a run-local log, so an observer (the serve
  /// job API) can sample a *live* run via RunLog::counters(). The log
  /// must outlive the run; PipelineResult::Telemetry still snapshots it
  /// at completion.
  RunLog *Log = nullptr;
  /// Job-owned cancellation token. When non-null, the run polls it at
  /// task boundaries (group pre-training, each evaluation) and aborts
  /// with a "job cancelled" error; under the Overlap schedule the
  /// TaskGraph's fail-fast then cascade-cancels everything not yet
  /// started. Must outlive the run.
  const CancelToken *Cancel = nullptr;
  /// Keep each evaluation's fine-tuned network in
  /// EvaluatedConfig::Network (memory scales with the subspace; meant
  /// for serving, not for large sweeps).
  bool KeepNetworks = false;
};

/// Everything a pipeline run produced.
struct PipelineResult {
  double FullAccuracy = 0.0;
  size_t FullWeightCount = 0;
  /// Evaluations sorted by ascending model size — the §6.2 exploration
  /// order for the min-ModelSize objective.
  std::vector<EvaluatedConfig> Evaluations;
  /// Tuning blocks pre-trained (empty for the baseline).
  std::vector<TuningBlock> Blocks;
  PretrainStats Pretrain;
  double EvaluationSeconds = 0.0; ///< Total fine-tuning time, all configs.
  /// Span log and counters of this run (always Measured; pre-training
  /// and evaluations are recorded whatever the schedule).
  RunTelemetry Telemetry;
};

/// Runs the pipeline for \p Subspace on \p Data.
Result<PipelineResult> runPruningPipeline(const ModelSpec &Spec,
                                          const Dataset &Data,
                                          std::vector<PruneConfig> Subspace,
                                          const TrainMeta &Meta,
                                          const PipelineOptions &Options,
                                          Rng &Generator);

/// A Table 3-style row derived from a pipeline run.
struct ExplorationSummary {
  int ConfigsEvaluated = 0;
  double Seconds = 0.0; ///< Exploration makespan + pre-training share.
  int WinnerIndex = -1;
  double WinnerSizeFraction = 0.0; ///< 0 when no winner.
  double PretrainSeconds = 0.0;    ///< This run's share (already counted).
  double OverheadFraction = 0.0;   ///< PretrainSeconds / Seconds.
  /// False: the row comes from the simulated multi-node schedule.
  /// True: from a run's measured telemetry (see summarizeMeasuredRun).
  bool Measured = false;
};

/// Replays the multi-node exploration schedule over \p Run's measured
/// per-configuration times against \p Objective.
ExplorationSummary summarizeExploration(const PipelineResult &Run,
                                        const PruningObjective &Objective,
                                        int Nodes);

/// Measured-parallel counterpart of summarizeExploration(): summarizes
/// what the runtime scheduler actually did, straight from \p Run's
/// telemetry — makespan instead of a simulated schedule, cancelled
/// evaluations excluded, overhead as the pre-training share of total
/// busy time. WinnerIndex is the exploration-order position of the first
/// non-cancelled configuration satisfying \p Objective.
ExplorationSummary summarizeMeasuredRun(const PipelineResult &Run,
                                        const PruningObjective &Objective);

} // namespace wootz

#endif // WOOTZ_EXPLORE_PIPELINE_H
