//===- explore/Objective.h - Pruning objective specifications ------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pruning-objective specification of Figure 3(b):
///
/// \code
///   # Format:
///   [min, max] [ModelSize, Accuracy]
///   constraint [ModelSize, Accuracy] [<, >, <=, >=] [Value]
///   # Example:
///   min ModelSize
///   constraint Accuracy > 0.8
/// \endcode
///
/// The objective drives the exploration order (§6.2): minimizing
/// ModelSize explores smallest models first; maximizing Accuracy explores
/// largest first "as a larger model tends to give a higher accuracy".
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_EXPLORE_OBJECTIVE_H
#define WOOTZ_EXPLORE_OBJECTIVE_H

#include "src/support/Error.h"

#include <string>
#include <vector>

namespace wootz {

/// The metrics an objective can reference.
enum class Metric { ModelSize, Accuracy };

/// Comparison operators for constraints.
enum class CompareOp { LT, GT, LE, GE };

/// One "constraint <metric> <op> <value>" line.
struct ObjectiveConstraint {
  Metric Which = Metric::Accuracy;
  CompareOp Op = CompareOp::GE;
  double Value = 0.0;

  /// Evaluates the constraint for a candidate network.
  bool holds(size_t ModelSize, double Accuracy) const;
};

/// A full pruning objective.
struct PruningObjective {
  bool Minimize = true;
  Metric Optimize = Metric::ModelSize;
  std::vector<ObjectiveConstraint> Constraints;

  /// True if a candidate meets every constraint.
  bool satisfied(size_t ModelSize, double Accuracy) const;

  /// True when exploration should proceed from the smallest model
  /// upwards (§6.2's order selection).
  bool exploreSmallestFirst() const {
    return !(Optimize == Metric::Accuracy && !Minimize);
  }
};

/// The conventional objective of the evaluation: the smallest network
/// whose accuracy is at least \p AccuracyThreshold.
PruningObjective smallestMeetingAccuracy(double AccuracyThreshold);

/// Parses the Figure 3(b) format. '#' comments and blank lines are
/// ignored.
Result<PruningObjective> parseObjective(const std::string &Text);

/// Prints in the format parseObjective() accepts.
std::string printObjective(const PruningObjective &Objective);

} // namespace wootz

#endif // WOOTZ_EXPLORE_OBJECTIVE_H
