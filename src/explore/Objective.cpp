//===- explore/Objective.cpp ----------------------------------------------------===//

#include "src/explore/Objective.h"

#include "src/support/StringUtils.h"

using namespace wootz;

bool ObjectiveConstraint::holds(size_t ModelSize, double Accuracy) const {
  const double Observed = Which == Metric::ModelSize
                              ? static_cast<double>(ModelSize)
                              : Accuracy;
  switch (Op) {
  case CompareOp::LT:
    return Observed < Value;
  case CompareOp::GT:
    return Observed > Value;
  case CompareOp::LE:
    return Observed <= Value;
  case CompareOp::GE:
    return Observed >= Value;
  }
  return false;
}

bool PruningObjective::satisfied(size_t ModelSize, double Accuracy) const {
  for (const ObjectiveConstraint &C : Constraints)
    if (!C.holds(ModelSize, Accuracy))
      return false;
  return true;
}

PruningObjective wootz::smallestMeetingAccuracy(double AccuracyThreshold) {
  PruningObjective Objective;
  Objective.Minimize = true;
  Objective.Optimize = Metric::ModelSize;
  Objective.Constraints.push_back(
      {Metric::Accuracy, CompareOp::GE, AccuracyThreshold});
  return Objective;
}

static Result<Metric> parseMetric(std::string_view Text) {
  if (Text == "ModelSize")
    return Metric::ModelSize;
  if (Text == "Accuracy")
    return Metric::Accuracy;
  return Error::failure("unknown metric '" + std::string(Text) +
                        "' (expected ModelSize or Accuracy)");
}

Result<PruningObjective> wootz::parseObjective(const std::string &Text) {
  PruningObjective Objective;
  bool SawOptimize = false;
  for (const std::string &RawLine : splitLines(Text)) {
    std::string_view Line = trim(RawLine);
    if (const size_t Hash = Line.find('#'); Hash != std::string_view::npos)
      Line = trim(Line.substr(0, Hash));
    if (Line.empty())
      continue;
    std::vector<std::string> Words;
    for (const std::string &Word : split(Line, ' '))
      if (!trim(Word).empty())
        Words.emplace_back(trim(Word));

    if (Words[0] == "min" || Words[0] == "max") {
      if (SawOptimize)
        return Error::failure("duplicate min/max line");
      if (Words.size() != 2)
        return Error::failure("expected 'min|max <Metric>'");
      Result<Metric> M = parseMetric(Words[1]);
      if (!M)
        return M.takeError();
      Objective.Minimize = Words[0] == "min";
      Objective.Optimize = *M;
      SawOptimize = true;
      continue;
    }
    if (Words[0] == "constraint") {
      if (Words.size() != 4)
        return Error::failure(
            "expected 'constraint <Metric> <op> <value>'");
      Result<Metric> M = parseMetric(Words[1]);
      if (!M)
        return M.takeError();
      CompareOp Op;
      if (Words[2] == "<")
        Op = CompareOp::LT;
      else if (Words[2] == ">")
        Op = CompareOp::GT;
      else if (Words[2] == "<=")
        Op = CompareOp::LE;
      else if (Words[2] == ">=")
        Op = CompareOp::GE;
      else
        return Error::failure("unknown comparison '" + Words[2] + "'");
      Result<double> Value = parseDouble(Words[3]);
      if (!Value)
        return Value.takeError();
      Objective.Constraints.push_back({*M, Op, *Value});
      continue;
    }
    return Error::failure("unrecognized objective line '" +
                          std::string(Line) + "'");
  }
  if (!SawOptimize)
    return Error::failure("objective needs a 'min <Metric>' or "
                          "'max <Metric>' line");
  return Objective;
}

std::string wootz::printObjective(const PruningObjective &Objective) {
  auto metricName = [](Metric M) {
    return M == Metric::ModelSize ? "ModelSize" : "Accuracy";
  };
  std::string Out = std::string(Objective.Minimize ? "min" : "max") + " " +
                    metricName(Objective.Optimize) + "\n";
  for (const ObjectiveConstraint &C : Objective.Constraints) {
    const char *Op = "<";
    if (C.Op == CompareOp::GT)
      Op = ">";
    else if (C.Op == CompareOp::LE)
      Op = "<=";
    else if (C.Op == CompareOp::GE)
      Op = ">=";
    Out += std::string("constraint ") + metricName(C.Which) + " " + Op +
           " " + formatDouble(C.Value, 4) + "\n";
  }
  return Out;
}
