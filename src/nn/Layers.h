//===- nn/Layers.h - Concrete layers ---------------------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concrete layer zoo used by the miniature ResNet/Inception models:
/// Conv2D, BatchNorm2D, ReLU, max/average/global-average pooling, Dense,
/// channel Concat and elementwise Add. All convolutional tensors are
/// NCHW; filters are OIHW.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_NN_LAYERS_H
#define WOOTZ_NN_LAYERS_H

#include "src/nn/Layer.h"
#include "src/tensor/Ops.h"

#include <mutex>

namespace wootz {

/// 2-D convolution with optional bias (square kernels).
class Conv2D : public Layer {
public:
  /// \p Geometry fixes channel counts, kernel size, stride and padding.
  explicit Conv2D(ConvGeometry Geometry, bool HasBias = true);

  std::string kind() const override { return "conv"; }
  Shape outputShape(const std::vector<Shape> &InputShapes) const override;
  void forward(const std::vector<const Tensor *> &Inputs, Tensor &Out,
               LayerScratch &Scratch, bool Training) const override;
  void backward(const std::vector<const Tensor *> &Inputs, const Tensor &Out,
                const Tensor &GradOut, LayerScratch &Scratch,
                const std::vector<Tensor *> &GradInputs) override;
  std::vector<Param *> params() override;
  void initParams(Rng &Generator) override;

  const ConvGeometry &geometry() const { return Geometry; }
  Param &weight() { return Weight; }
  const Param &weight() const { return Weight; }
  Param *bias() { return HasBias ? &Bias : nullptr; }
  const Param *bias() const { return HasBias ? &Bias : nullptr; }

private:
  ConvGeometry Geometry;
  bool HasBias;
  Param Weight; ///< OIHW.
  Param Bias;   ///< [O]; unused when HasBias is false.
};

/// Per-channel batch normalization with running statistics.
class BatchNorm2D : public Layer {
public:
  explicit BatchNorm2D(int Channels, float Momentum = 0.9f,
                       float Epsilon = 1e-5f);

  std::string kind() const override { return "batchnorm"; }
  Shape outputShape(const std::vector<Shape> &InputShapes) const override;
  void forward(const std::vector<const Tensor *> &Inputs, Tensor &Out,
               LayerScratch &Scratch, bool Training) const override;
  void backward(const std::vector<const Tensor *> &Inputs, const Tensor &Out,
                const Tensor &GradOut, LayerScratch &Scratch,
                const std::vector<Tensor *> &GradInputs) override;
  std::vector<Param *> params() override;
  std::vector<Param *> state() override;
  void initParams(Rng &Generator) override;

  int channels() const { return Channels; }
  float epsilon() const { return Epsilon; }
  const Param &gamma() const { return Gamma; }
  const Param &beta() const { return Beta; }
  /// Running statistics are exposed as (non-trainable) Params so that
  /// checkpoints capture them.
  Param &runningMean() { return RunningMean; }
  Param &runningVar() { return RunningVar; }
  const Param &runningMean() const { return RunningMean; }
  const Param &runningVar() const { return RunningVar; }

private:
  int Channels;
  float Momentum;
  float Epsilon;
  Param Gamma;
  Param Beta;
  /// Running statistics are model state updated from the (const) training
  /// forward pass: mutable, and guarded by StatsMutex so that concurrent
  /// training forwards through distinct ExecContexts stay race-free. The
  /// eval path reads them without the lock, so training and eval forwards
  /// must not run concurrently over one graph (see DESIGN.md).
  mutable Param RunningMean;
  mutable Param RunningVar;
  mutable std::mutex StatsMutex;
};

/// Elementwise rectified linear unit.
class ReLU : public Layer {
public:
  std::string kind() const override { return "relu"; }
  Shape outputShape(const std::vector<Shape> &InputShapes) const override;
  void forward(const std::vector<const Tensor *> &Inputs, Tensor &Out,
               LayerScratch &Scratch, bool Training) const override;
  void backward(const std::vector<const Tensor *> &Inputs, const Tensor &Out,
                const Tensor &GradOut, LayerScratch &Scratch,
                const std::vector<Tensor *> &GradInputs) override;
};

/// Spatial pooling (max or average) with square windows.
class Pool2D : public Layer {
public:
  enum class Mode { Max, Average };

  Pool2D(Mode PoolMode, int Window, int Stride, int Pad = 0);

  std::string kind() const override {
    return PoolMode == Mode::Max ? "maxpool" : "avgpool";
  }

  Mode mode() const { return PoolMode; }
  int window() const { return Window; }
  int stride() const { return Stride; }
  int pad() const { return Pad; }
  Shape outputShape(const std::vector<Shape> &InputShapes) const override;
  void forward(const std::vector<const Tensor *> &Inputs, Tensor &Out,
               LayerScratch &Scratch, bool Training) const override;
  void backward(const std::vector<const Tensor *> &Inputs, const Tensor &Out,
                const Tensor &GradOut, LayerScratch &Scratch,
                const std::vector<Tensor *> &GradInputs) override;

private:
  Mode PoolMode;
  int Window;
  int Stride;
  int Pad;
};

/// Global average pooling: NCHW -> NC11.
class GlobalAvgPool : public Layer {
public:
  std::string kind() const override { return "globalavgpool"; }
  Shape outputShape(const std::vector<Shape> &InputShapes) const override;
  void forward(const std::vector<const Tensor *> &Inputs, Tensor &Out,
               LayerScratch &Scratch, bool Training) const override;
  void backward(const std::vector<const Tensor *> &Inputs, const Tensor &Out,
                const Tensor &GradOut, LayerScratch &Scratch,
                const std::vector<Tensor *> &GradInputs) override;
};

/// Fully connected layer; rank-4 inputs are flattened per sample.
class Dense : public Layer {
public:
  Dense(int InFeatures, int OutFeatures);

  std::string kind() const override { return "dense"; }
  Shape outputShape(const std::vector<Shape> &InputShapes) const override;
  void forward(const std::vector<const Tensor *> &Inputs, Tensor &Out,
               LayerScratch &Scratch, bool Training) const override;
  void backward(const std::vector<const Tensor *> &Inputs, const Tensor &Out,
                const Tensor &GradOut, LayerScratch &Scratch,
                const std::vector<Tensor *> &GradInputs) override;
  std::vector<Param *> params() override;
  void initParams(Rng &Generator) override;

  int inFeatures() const { return InFeatures; }
  int outFeatures() const { return OutFeatures; }
  Param &weight() { return Weight; }
  Param &bias() { return Bias; }
  const Param &weight() const { return Weight; }
  const Param &bias() const { return Bias; }

private:
  int InFeatures;
  int OutFeatures;
  Param Weight; ///< [Out, In].
  Param Bias;   ///< [Out].
};

/// Concatenates inputs along the channel axis (Inception branches).
class Concat : public Layer {
public:
  std::string kind() const override { return "concat"; }
  Shape outputShape(const std::vector<Shape> &InputShapes) const override;
  void forward(const std::vector<const Tensor *> &Inputs, Tensor &Out,
               LayerScratch &Scratch, bool Training) const override;
  void backward(const std::vector<const Tensor *> &Inputs, const Tensor &Out,
                const Tensor &GradOut, LayerScratch &Scratch,
                const std::vector<Tensor *> &GradInputs) override;
};

/// Inverted dropout: in training mode each activation is zeroed with
/// probability DropRate and survivors are scaled by 1/(1-DropRate); in
/// evaluation mode it is the identity. Deterministic in its seed.
class Dropout : public Layer {
public:
  explicit Dropout(float DropRate, uint64_t Seed = 0xd20b);

  std::string kind() const override { return "dropout"; }
  Shape outputShape(const std::vector<Shape> &InputShapes) const override;
  void forward(const std::vector<const Tensor *> &Inputs, Tensor &Out,
               LayerScratch &Scratch, bool Training) const override;
  void backward(const std::vector<const Tensor *> &Inputs, const Tensor &Out,
                const Tensor &GradOut, LayerScratch &Scratch,
                const std::vector<Tensor *> &GradInputs) override;

  float dropRate() const { return DropRate; }

private:
  float DropRate;
  /// Seed for the per-context mask stream: the actual Rng lives in
  /// LayerScratch, so each ExecContext replays an independent
  /// deterministic stream without contending on layer state.
  uint64_t Seed;
};

/// Elementwise addition (ResNet shortcut joins).
class Add : public Layer {
public:
  std::string kind() const override { return "add"; }
  Shape outputShape(const std::vector<Shape> &InputShapes) const override;
  void forward(const std::vector<const Tensor *> &Inputs, Tensor &Out,
               LayerScratch &Scratch, bool Training) const override;
  void backward(const std::vector<const Tensor *> &Inputs, const Tensor &Out,
                const Tensor &GradOut, LayerScratch &Scratch,
                const std::vector<Tensor *> &GradInputs) override;
};

} // namespace wootz

#endif // WOOTZ_NN_LAYERS_H
