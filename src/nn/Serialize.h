//===- nn/Serialize.h - Tensor (de)serialization ---------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal binary format mapping names to tensors — the equivalent of
/// TensorFlow checkpoints the paper stores pre-trained tuning blocks in.
///
/// Two format versions exist. V1 ("WOOTZCK1"): magic, entry count, then
/// per entry name, rank, extents, data. V2 ("WOOTZCK2", the default
/// writer output) adds crash/corruption detection: a total-length field
/// in the header (truncation is caught before any entry is parsed) and a
/// per-entry CRC32 covering the whole entry record, so any byte flip in
/// a name, shape, or payload is a clean Error instead of silently wrong
/// weights. Readers accept both versions; all integers are little-endian
/// uint32/uint64.
///
/// Writing to disk goes through writeFileAtomic(), so a save interrupted
/// at any point leaves either the old or the complete new file under the
/// final name — never a partial one.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_NN_SERIALIZE_H
#define WOOTZ_NN_SERIALIZE_H

#include "src/support/Error.h"
#include "src/tensor/Tensor.h"

#include <map>
#include <string>

namespace wootz {

/// A named tensor bundle, the in-memory form of a checkpoint file.
using TensorBundle = std::map<std::string, Tensor>;

/// On-disk checkpoint format version.
enum class CheckpointFormat {
  V1, ///< Legacy: no checksums, no length field. Read-compatibility only.
  V2, ///< Current: header total-length + per-entry CRC32.
};

/// Serializes \p Bundle into a byte string (V2 unless asked otherwise;
/// the V1 writer exists for compatibility tests).
std::string serializeTensors(const TensorBundle &Bundle,
                             CheckpointFormat Format = CheckpointFormat::V2);

/// Parses a byte string produced by serializeTensors(), either version.
/// Truncation, byte flips (V2), oversized or overflowing size fields,
/// and trailing garbage all produce an Error, never a crash or a
/// multi-gigabyte allocation.
Result<TensorBundle> deserializeTensors(const std::string &Bytes);

/// Writes \p Bundle to \p Path atomically (write-to-temp, then rename);
/// returns an error on I/O failure.
Error saveTensors(const std::string &Path, const TensorBundle &Bundle);

/// Reads a bundle from \p Path.
Result<TensorBundle> loadTensors(const std::string &Path);

} // namespace wootz

#endif // WOOTZ_NN_SERIALIZE_H
