//===- nn/Serialize.h - Tensor (de)serialization ---------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal binary format mapping names to tensors — the equivalent of
/// TensorFlow checkpoints the paper stores pre-trained tuning blocks in.
/// Layout: magic, entry count, then per entry: name, rank, extents, data.
/// All integers are little-endian uint32/uint64.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_NN_SERIALIZE_H
#define WOOTZ_NN_SERIALIZE_H

#include "src/support/Error.h"
#include "src/tensor/Tensor.h"

#include <map>
#include <string>

namespace wootz {

/// A named tensor bundle, the in-memory form of a checkpoint file.
using TensorBundle = std::map<std::string, Tensor>;

/// Serializes \p Bundle into a byte string.
std::string serializeTensors(const TensorBundle &Bundle);

/// Parses a byte string produced by serializeTensors().
Result<TensorBundle> deserializeTensors(const std::string &Bytes);

/// Writes \p Bundle to \p Path; returns an error on I/O failure.
Error saveTensors(const std::string &Path, const TensorBundle &Bundle);

/// Reads a bundle from \p Path.
Result<TensorBundle> loadTensors(const std::string &Path);

} // namespace wootz

#endif // WOOTZ_NN_SERIALIZE_H
