//===- nn/Layer.h - Layer interface ----------------------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The layer abstraction under the Graph network runtime. A Layer is a
/// stateless-by-default operator over tensors; stateful layers (Conv2D,
/// Dense, BatchNorm) expose their parameters as Param objects so the
/// optimizer and the checkpoint store can reach them uniformly.
///
/// Layers implement forward() and backward() over explicit input/output
/// tensors; all pass-local buffers (activations, gradients, scratch)
/// belong to the caller's ExecContext, never to the layer. forward() is
/// const — it may read parameters and write only the output and the
/// caller-supplied LayerScratch — so one Layer object can be evaluated
/// from several execution contexts concurrently. This is the minimal
/// substrate the Wootz pipeline needs from a DNN framework: train,
/// evaluate, freeze, and read intermediate activations.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_NN_LAYER_H
#define WOOTZ_NN_LAYER_H

#include "src/support/Rng.h"
#include "src/tensor/Tensor.h"

#include <memory>
#include <string>
#include <vector>

namespace wootz {

/// A trainable parameter: value plus gradient accumulator.
struct Param {
  /// Creates a parameter of the given shape (zero value and gradient).
  explicit Param(Shape ParamShape)
      : Value(ParamShape), Grad(ParamShape) {}

  Tensor Value;
  Tensor Grad;
};

/// Per-layer pass-local state, owned by the caller's ExecContext (one
/// LayerScratch per node per context).
///
/// Layers may stash pass-local state here (e.g. im2col buffers, batchnorm
/// batch statistics, dropout masks) so that a single Layer object can be
/// evaluated on several contexts or batch sizes without aliasing.
struct LayerScratch {
  std::vector<Tensor> Buffers;
  /// Lazily created stream for stochastic layers (Dropout): each context
  /// replays the layer's deterministic stream independently, so one
  /// shared layer never contends on generator state across contexts.
  std::unique_ptr<Rng> Generator;
};

/// Abstract network layer.
class Layer {
public:
  virtual ~Layer();

  /// A short operator name ("conv", "relu", ...) for diagnostics and for
  /// the code emitter.
  virtual std::string kind() const = 0;

  /// Computes the output shape for the given input shapes. Asserts if
  /// the inputs are incompatible with the layer.
  virtual Shape outputShape(const std::vector<Shape> &InputShapes) const = 0;

  /// Runs the layer. \p Out has already been allocated to outputShape().
  /// \p Training selects training semantics (e.g. batchnorm batch stats).
  /// Must not mutate the layer beyond \p Scratch; BatchNorm2D's running
  /// statistics are the one sanctioned exception (updated under a lock,
  /// see Layers.h).
  virtual void forward(const std::vector<const Tensor *> &Inputs,
                       Tensor &Out, LayerScratch &Scratch,
                       bool Training) const = 0;

  /// Accumulates parameter gradients and writes input gradients.
  ///
  /// \p GradInputs holds one tensor per input, already allocated and
  /// zero-filled; entries that are nullptr do not need a gradient (their
  /// producer subgraph is frozen) and must be skipped. Unlike forward(),
  /// backward() mutates shared parameter gradients, so concurrent
  /// backward passes over one layer need external synchronization.
  virtual void backward(const std::vector<const Tensor *> &Inputs,
                        const Tensor &Out, const Tensor &GradOut,
                        LayerScratch &Scratch,
                        const std::vector<Tensor *> &GradInputs) = 0;

  /// The layer's trainable parameters; empty for stateless layers.
  virtual std::vector<Param *> params() { return {}; }

  /// All persistent state, trainable or not. Defaults to params();
  /// BatchNorm2D additionally exposes its running statistics so that
  /// checkpoints capture them.
  virtual std::vector<Param *> state() { return params(); }

  /// Randomly initializes the parameters (no-op for stateless layers).
  virtual void initParams(Rng &Generator) { (void)Generator; }

  /// Number of trainable scalars in this layer.
  size_t paramCount();
};

} // namespace wootz

#endif // WOOTZ_NN_LAYER_H
