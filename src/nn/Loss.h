//===- nn/Loss.h - Loss functions ------------------------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two losses the Wootz pipeline needs:
///  * softmax cross-entropy for full-network training / fine-tuning, and
///  * the activation-map reconstruction loss min ||O - O'||^2 used by the
///    Teacher-Student tuning-block pre-training (§6.1).
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_NN_LOSS_H
#define WOOTZ_NN_LOSS_H

#include "src/tensor/Tensor.h"

#include <vector>

namespace wootz {

/// Computes the mean softmax cross-entropy of \p Logits (shape
/// [Batch, Classes]) against integer \p Labels and writes the gradient
/// with respect to the logits into \p GradLogits (resized as needed).
double softmaxCrossEntropy(const Tensor &Logits,
                           const std::vector<int> &Labels,
                           Tensor &GradLogits);

/// Fraction of rows whose argmax equals the label.
double accuracyFromLogits(const Tensor &Logits,
                          const std::vector<int> &Labels);

/// Computes 0.5 * mean((Pred - Target)^2) and the gradient with respect
/// to \p Pred. This is the reconstruction error between the pruned
/// tuning block's activation maps and its unpruned counterpart's.
double l2Reconstruction(const Tensor &Pred, const Tensor &Target,
                        Tensor &GradPred);

/// Knowledge-distillation loss (Hinton et al., cited by the paper's §8):
/// temperature-softened cross-entropy between \p StudentLogits and
/// \p TeacherLogits, scaled by Temperature^2 so its gradients stay
/// comparable to the hard-label loss. Writes d(loss)/d(student logits)
/// into \p GradStudent.
double distillationLoss(const Tensor &StudentLogits,
                        const Tensor &TeacherLogits, float Temperature,
                        Tensor &GradStudent);

} // namespace wootz

#endif // WOOTZ_NN_LOSS_H
