//===- nn/Serialize.cpp ----------------------------------------------------===//

#include "src/nn/Serialize.h"

#include "src/support/File.h"
#include "src/support/Hash.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>

using namespace wootz;

static const char MagicV1[8] = {'W', 'O', 'O', 'T', 'Z', 'C', 'K', '1'};
static const char MagicV2[8] = {'W', 'O', 'O', 'T', 'Z', 'C', 'K', '2'};

static void appendU32(std::string &Out, uint32_t Value) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((Value >> (8 * I)) & 0xff));
}

static void appendU64(std::string &Out, uint64_t Value) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((Value >> (8 * I)) & 0xff));
}

static void patchU64(std::string &Out, size_t Offset, uint64_t Value) {
  for (int I = 0; I < 8; ++I)
    Out[Offset + I] = static_cast<char>((Value >> (8 * I)) & 0xff);
}

namespace {
/// Cursor over the serialized byte string with bounds-checked reads.
class Reader {
public:
  explicit Reader(const std::string &Bytes) : Bytes(Bytes) {}

  bool readU32(uint32_t &Value) {
    if (remaining() < 4)
      return false;
    Value = 0;
    for (int I = 0; I < 4; ++I)
      Value |= static_cast<uint32_t>(
                   static_cast<unsigned char>(Bytes[Offset + I]))
               << (8 * I);
    Offset += 4;
    return true;
  }

  bool readU64(uint64_t &Value) {
    if (remaining() < 8)
      return false;
    Value = 0;
    for (int I = 0; I < 8; ++I)
      Value |= static_cast<uint64_t>(
                   static_cast<unsigned char>(Bytes[Offset + I]))
               << (8 * I);
    Offset += 8;
    return true;
  }

  bool readBytes(void *Out, size_t Count) {
    if (remaining() < Count)
      return false;
    std::memcpy(Out, Bytes.data() + Offset, Count);
    Offset += Count;
    return true;
  }

  size_t offset() const { return Offset; }
  size_t remaining() const { return Bytes.size() - Offset; }

  /// CRC32 of the already-consumed range [From, offset()).
  uint32_t crcSince(size_t From) const {
    return crc32(Bytes.data() + From, Offset - From);
  }

private:
  const std::string &Bytes;
  size_t Offset = 0;
};
} // namespace

/// Serializes one entry record (name length, name, rank, extents, data)
/// — the unit the V2 per-entry CRC covers.
static void appendEntryRecord(std::string &Out, const std::string &Name,
                              const Tensor &Value) {
  appendU32(Out, static_cast<uint32_t>(Name.size()));
  Out += Name;
  appendU32(Out, static_cast<uint32_t>(Value.shape().rank()));
  for (int Axis = 0; Axis < Value.shape().rank(); ++Axis)
    appendU32(Out, static_cast<uint32_t>(Value.shape()[Axis]));
  const size_t ByteCount = Value.size() * sizeof(float);
  Out.append(reinterpret_cast<const char *>(Value.data()), ByteCount);
}

std::string wootz::serializeTensors(const TensorBundle &Bundle,
                                    CheckpointFormat Format) {
  std::string Out;
  if (Format == CheckpointFormat::V1) {
    Out.append(MagicV1, sizeof(MagicV1));
    appendU64(Out, Bundle.size());
    for (const auto &[Name, Value] : Bundle)
      appendEntryRecord(Out, Name, Value);
    return Out;
  }

  Out.append(MagicV2, sizeof(MagicV2));
  const size_t LengthOffset = Out.size();
  appendU64(Out, 0); // Total length, patched once the size is known.
  appendU64(Out, Bundle.size());
  for (const auto &[Name, Value] : Bundle) {
    std::string Record;
    appendEntryRecord(Record, Name, Value);
    appendU32(Out, crc32(Record));
    Out += Record;
  }
  patchU64(Out, LengthOffset, Out.size());
  return Out;
}

/// Parses one entry record with every size field validated against the
/// bytes actually remaining, so corrupt fields cannot trigger huge
/// allocations or out-of-range shapes.
static Error readEntryRecord(Reader &Cursor, std::string &Name,
                             Tensor &Value) {
  uint32_t NameLength = 0;
  if (!Cursor.readU32(NameLength))
    return Error::failure("checkpoint truncated before entry name");
  if (NameLength > Cursor.remaining())
    return Error::failure("checkpoint entry name length " +
                          std::to_string(NameLength) +
                          " exceeds the remaining " +
                          std::to_string(Cursor.remaining()) + " bytes");
  Name.assign(NameLength, '\0');
  if (!Cursor.readBytes(Name.data(), NameLength))
    return Error::failure("checkpoint truncated in entry name");
  uint32_t Rank = 0;
  if (!Cursor.readU32(Rank) || Rank == 0 || Rank > 4)
    return Error::failure("checkpoint entry '" + Name +
                          "' has invalid rank");
  std::vector<int> Dims(Rank);
  uint64_t ElementCount = 1;
  for (uint32_t Axis = 0; Axis < Rank; ++Axis) {
    uint32_t Extent = 0;
    if (!Cursor.readU32(Extent) || Extent == 0 ||
        Extent > static_cast<uint32_t>(std::numeric_limits<int>::max()))
      return Error::failure("checkpoint entry '" + Name +
                            "' has invalid extent");
    Dims[Axis] = static_cast<int>(Extent);
    // Guard the product before multiplying: four rank-4 extents of up
    // to 2^31 would overflow uint64 bytes if multiplied blindly.
    const uint64_t MaxElements =
        std::numeric_limits<uint64_t>::max() / sizeof(float);
    if (ElementCount > MaxElements / Extent)
      return Error::failure("checkpoint entry '" + Name +
                            "' has an overflowing element count");
    ElementCount *= Extent;
  }
  const uint64_t ByteCount = ElementCount * sizeof(float);
  if (ByteCount > Cursor.remaining())
    return Error::failure("checkpoint entry '" + Name + "' claims " +
                          std::to_string(ByteCount) +
                          " payload bytes but only " +
                          std::to_string(Cursor.remaining()) + " remain");
  Value = Tensor{Shape(Dims)};
  if (!Cursor.readBytes(Value.data(), static_cast<size_t>(ByteCount)))
    return Error::failure("checkpoint truncated in entry '" + Name + "'");
  return Error::success();
}

Result<TensorBundle> wootz::deserializeTensors(const std::string &Bytes) {
  if (Bytes.size() < sizeof(MagicV1))
    return Error::failure("not a wootz checkpoint: too short");
  const bool V2 = std::memcmp(Bytes.data(), MagicV2, sizeof(MagicV2)) == 0;
  if (!V2 && std::memcmp(Bytes.data(), MagicV1, sizeof(MagicV1)) != 0)
    return Error::failure("not a wootz checkpoint: bad magic");
  Reader Cursor(Bytes);
  char Skipped[sizeof(MagicV1)];
  Cursor.readBytes(Skipped, sizeof(Skipped));
  if (V2) {
    uint64_t TotalLength = 0;
    if (!Cursor.readU64(TotalLength))
      return Error::failure("checkpoint truncated in header");
    if (TotalLength != Bytes.size())
      return Error::failure(
          "checkpoint length mismatch: header says " +
          std::to_string(TotalLength) + " bytes, file has " +
          std::to_string(Bytes.size()));
  }
  uint64_t EntryCount = 0;
  if (!Cursor.readU64(EntryCount))
    return Error::failure("checkpoint truncated in header");

  TensorBundle Bundle;
  for (uint64_t Entry = 0; Entry < EntryCount; ++Entry) {
    uint32_t ExpectedCrc = 0;
    if (V2 && !Cursor.readU32(ExpectedCrc))
      return Error::failure("checkpoint truncated before entry checksum");
    const size_t RecordStart = Cursor.offset();
    std::string Name;
    Tensor Value;
    if (Error E = readEntryRecord(Cursor, Name, Value))
      return E;
    if (V2) {
      const uint32_t ActualCrc = Cursor.crcSince(RecordStart);
      if (ActualCrc != ExpectedCrc)
        return Error::failure("checkpoint entry '" + Name +
                              "' fails its CRC32 check (stored " +
                              toHex(ExpectedCrc, 8) + ", computed " +
                              toHex(ActualCrc, 8) + ")");
    }
    if (!Bundle.emplace(std::move(Name), std::move(Value)).second)
      return Error::failure("checkpoint contains a duplicate entry name");
  }
  if (Cursor.remaining() != 0)
    return Error::failure("checkpoint has " +
                          std::to_string(Cursor.remaining()) +
                          " trailing bytes after the last entry");
  return Bundle;
}

Error wootz::saveTensors(const std::string &Path,
                         const TensorBundle &Bundle) {
  return writeFileAtomic(Path, serializeTensors(Bundle));
}

Result<TensorBundle> wootz::loadTensors(const std::string &Path) {
  std::ifstream Stream(Path, std::ios::binary);
  if (!Stream)
    return Error::failure("cannot open '" + Path + "' for reading");
  std::string Bytes((std::istreambuf_iterator<char>(Stream)),
                    std::istreambuf_iterator<char>());
  if (Stream.bad())
    return Error::failure("read from '" + Path + "' failed");
  return deserializeTensors(Bytes);
}
