//===- nn/Serialize.cpp ----------------------------------------------------===//

#include "src/nn/Serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

using namespace wootz;

static const char Magic[8] = {'W', 'O', 'O', 'T', 'Z', 'C', 'K', '1'};

static void appendU32(std::string &Out, uint32_t Value) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((Value >> (8 * I)) & 0xff));
}

static void appendU64(std::string &Out, uint64_t Value) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((Value >> (8 * I)) & 0xff));
}

namespace {
/// Cursor over the serialized byte string with bounds-checked reads.
class Reader {
public:
  explicit Reader(const std::string &Bytes) : Bytes(Bytes) {}

  bool readU32(uint32_t &Value) {
    if (Offset + 4 > Bytes.size())
      return false;
    Value = 0;
    for (int I = 0; I < 4; ++I)
      Value |= static_cast<uint32_t>(
                   static_cast<unsigned char>(Bytes[Offset + I]))
               << (8 * I);
    Offset += 4;
    return true;
  }

  bool readU64(uint64_t &Value) {
    if (Offset + 8 > Bytes.size())
      return false;
    Value = 0;
    for (int I = 0; I < 8; ++I)
      Value |= static_cast<uint64_t>(
                   static_cast<unsigned char>(Bytes[Offset + I]))
               << (8 * I);
    Offset += 8;
    return true;
  }

  bool readBytes(void *Out, size_t Count) {
    if (Offset + Count > Bytes.size())
      return false;
    std::memcpy(Out, Bytes.data() + Offset, Count);
    Offset += Count;
    return true;
  }

private:
  const std::string &Bytes;
  size_t Offset = 0;
};
} // namespace

std::string wootz::serializeTensors(const TensorBundle &Bundle) {
  std::string Out;
  Out.append(Magic, sizeof(Magic));
  appendU64(Out, Bundle.size());
  for (const auto &[Name, Value] : Bundle) {
    appendU32(Out, static_cast<uint32_t>(Name.size()));
    Out += Name;
    appendU32(Out, static_cast<uint32_t>(Value.shape().rank()));
    for (int Axis = 0; Axis < Value.shape().rank(); ++Axis)
      appendU32(Out, static_cast<uint32_t>(Value.shape()[Axis]));
    const size_t ByteCount = Value.size() * sizeof(float);
    Out.append(reinterpret_cast<const char *>(Value.data()), ByteCount);
  }
  return Out;
}

Result<TensorBundle> wootz::deserializeTensors(const std::string &Bytes) {
  if (Bytes.size() < sizeof(Magic) ||
      std::memcmp(Bytes.data(), Magic, sizeof(Magic)) != 0)
    return Error::failure("not a wootz checkpoint: bad magic");
  Reader Cursor(Bytes);
  char Skipped[sizeof(Magic)];
  Cursor.readBytes(Skipped, sizeof(Magic));
  uint64_t EntryCount = 0;
  if (!Cursor.readU64(EntryCount))
    return Error::failure("checkpoint truncated in header");

  TensorBundle Bundle;
  for (uint64_t Entry = 0; Entry < EntryCount; ++Entry) {
    uint32_t NameLength = 0;
    if (!Cursor.readU32(NameLength))
      return Error::failure("checkpoint truncated before entry name");
    std::string Name(NameLength, '\0');
    if (!Cursor.readBytes(Name.data(), NameLength))
      return Error::failure("checkpoint truncated in entry name");
    uint32_t Rank = 0;
    if (!Cursor.readU32(Rank) || Rank == 0 || Rank > 4)
      return Error::failure("checkpoint entry '" + Name +
                            "' has invalid rank");
    std::vector<int> Dims(Rank);
    for (uint32_t Axis = 0; Axis < Rank; ++Axis) {
      uint32_t Extent = 0;
      if (!Cursor.readU32(Extent) || Extent == 0)
        return Error::failure("checkpoint entry '" + Name +
                              "' has invalid extent");
      Dims[Axis] = static_cast<int>(Extent);
    }
    Tensor Value{Shape(Dims)};
    if (!Cursor.readBytes(Value.data(), Value.size() * sizeof(float)))
      return Error::failure("checkpoint truncated in entry '" + Name + "'");
    Bundle.emplace(std::move(Name), std::move(Value));
  }
  return Bundle;
}

Error wootz::saveTensors(const std::string &Path,
                         const TensorBundle &Bundle) {
  std::ofstream Stream(Path, std::ios::binary | std::ios::trunc);
  if (!Stream)
    return Error::failure("cannot open '" + Path + "' for writing");
  const std::string Bytes = serializeTensors(Bundle);
  Stream.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  if (!Stream)
    return Error::failure("write to '" + Path + "' failed");
  return Error::success();
}

Result<TensorBundle> wootz::loadTensors(const std::string &Path) {
  std::ifstream Stream(Path, std::ios::binary);
  if (!Stream)
    return Error::failure("cannot open '" + Path + "' for reading");
  std::string Bytes((std::istreambuf_iterator<char>(Stream)),
                    std::istreambuf_iterator<char>());
  return deserializeTensors(Bytes);
}
