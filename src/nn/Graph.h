//===- nn/Graph.h - DAG network runtime ------------------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A directed-acyclic network of layers, the runtime counterpart of the
/// multiplexing model the Wootz compiler generates. A single Graph can
/// host the full (teacher) model and several pruned tuning blocks side by
/// side: nodes are individually freezable, and backward propagation stops
/// automatically at frozen subgraphs, which is exactly what Teacher-
/// Student pre-training needs (§6.1 of the paper).
///
/// Ownership is split in two. The Graph is the *model*: topology, layer
/// parameters, and persistent state (e.g. batchnorm running statistics).
/// After construction it is immutable during execution, so any number of
/// callers may read it concurrently. All pass-local state — activations,
/// output gradients, per-layer scratch, gradient-pass bookkeeping — lives
/// in an ExecContext created per caller. That is what lets one trained
/// teacher or one assembled network serve many threads without copying
/// its weights (the composability premise of §6.1).
///
/// Usage for one training step:
/// \code
///   ExecContext Ctx(G);
///   Ctx.setInput("input", std::move(Batch)); // or copy from an lvalue
///   Ctx.forward(G, /*Training=*/true);
///   G.zeroGrads();
///   double Loss = softmaxCrossEntropy(Ctx.activation("logits"), Labels,
///                                     Grad);
///   Ctx.seedGradient("logits", Grad);
///   Ctx.backward(G);
///   Optimizer.step(G.trainableParams());
/// \endcode
///
/// The classic single-threaded surface (`G.setInput(...); G.forward(...);
/// G.activation(...)`) still works: it delegates to a default context
/// embedded in the Graph.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_NN_GRAPH_H
#define WOOTZ_NN_GRAPH_H

#include "src/nn/Layer.h"
#include "src/support/Error.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace wootz {

class Graph;

/// Per-caller execution state for one Graph: activations, output
/// gradients, and per-layer scratch. Create one ExecContext per thread
/// (or per in-flight evaluation) over a shared Graph; contexts are cheap
/// to keep alive and reuse their buffers across batches, reallocating
/// only when a shape changes.
///
/// Thread-safety contract (see DESIGN.md "Re-entrant execution"):
/// concurrent forward() calls over one Graph through distinct contexts
/// are safe in both eval and training mode; concurrent backward() calls
/// are not (parameter gradients are shared model state). Do not use one
/// ExecContext from two threads at once.
class ExecContext {
public:
  /// Creates an unbound context; bind() or the first forward() attaches
  /// it to a graph.
  ExecContext() = default;

  /// Creates a context bound to \p G.
  explicit ExecContext(const Graph &G) { bind(G); }

  ExecContext(ExecContext &&) = default;
  ExecContext &operator=(ExecContext &&) = default;

  /// Attaches this context to \p G, sizing the per-node slots. Rebinding
  /// to a different graph resets all pass-local state.
  void bind(const Graph &G);

  /// The graph this context is bound to, or null.
  const Graph *graph() const { return Bound; }

  /// Binds \p Value to the input placeholder \p Name (copies the tensor).
  void setInput(const std::string &Name, const Tensor &Value);

  /// Move-in variant: takes ownership of \p Value without copying the
  /// batch. Use this on hot paths (Trainer steps, the serving Batcher).
  void setInput(const std::string &Name, Tensor &&Value);

  /// Runs every node of \p G in topological order. \p G must be the bound
  /// graph (an unbound context binds to it).
  void forward(const Graph &G, bool Training);

  /// The most recent activation of node \p Name. Valid after forward().
  const Tensor &activation(const std::string &Name) const;

  /// The gradient of the loss w.r.t. node \p Name's output from the most
  /// recent backward() pass, or null if none flowed there this pass.
  /// Used by data-driven filter-importance criteria (pruning/Importance).
  const Tensor *outputGradient(const std::string &Name) const;

  /// Checked variant of activation() for lookups on user-supplied node
  /// names (the serve path): unknown names become a clean Error instead
  /// of an assert.
  Result<const Tensor *> findActivation(const std::string &Name) const;

  /// Checked variant of outputGradient(); unknown names become an Error.
  /// A known node that received no gradient this pass yields success
  /// holding nullptr, mirroring outputGradient().
  Result<const Tensor *> findOutputGradient(const std::string &Name) const;

  /// Accumulates \p Grad into the output gradient of node \p Name.
  /// Shapes must match the node's current activation.
  void seedGradient(const std::string &Name, const Tensor &Grad);

  /// Propagates all seeded gradients back to every trainable parameter of
  /// \p G. Frozen subgraphs (no trainable ancestors) are skipped. Takes
  /// the graph non-const: parameter gradients are model state, so callers
  /// running backward concurrently over one graph must serialize.
  void backward(Graph &G);

private:
  friend class Graph;

  /// Pass-local state for one graph node.
  struct Slot {
    Tensor Activation;
    Tensor GradOut;
    uint64_t GradPassId = 0; ///< Pass in which GradOut was last zeroed.
    LayerScratch Scratch;
  };

  /// Grows Slots to cover nodes added to the bound graph after bind().
  void syncSlots();
  /// Ensures \p S's GradOut matches its activation and is zeroed for the
  /// current pass.
  void ensureGradBuffer(Slot &S);

  const Graph *Bound = nullptr;
  std::vector<Slot> Slots;
  uint64_t PassId = 0;
};

/// A DAG of named layer nodes: topology plus parameters. Execution state
/// lives in ExecContext; the forward/backward members below are thin
/// compatibility wrappers over an internal default context, preserved for
/// single-threaded callers.
class Graph {
public:
  Graph() = default;
  /// Graphs are movable (AssembledNetwork holds one by value); the move
  /// re-points the embedded default context at the new location.
  Graph(Graph &&Other) noexcept;
  Graph &operator=(Graph &&Other) noexcept;

  /// Declares an input placeholder named \p Name.
  void addInput(const std::string &Name);

  /// Adds a layer node consuming the named producer nodes, which must
  /// already exist (so insertion order is a topological order). Returns
  /// the node's index.
  int addNode(const std::string &Name, std::unique_ptr<Layer> NodeLayer,
              const std::vector<std::string> &InputNames);

  /// True if a node with this name exists.
  bool hasNode(const std::string &Name) const;

  /// The layer behind \p Name; asserts that the node exists and is not an
  /// input placeholder.
  Layer &layer(const std::string &Name);

  /// Read-only access to the layer behind \p Name; null for input
  /// placeholders and unknown names. The compile-time inspection entry
  /// point for freeze-time consumers (wootz::plan).
  const Layer *findLayer(const std::string &Name) const;

  /// Producer node names of \p Name in declaration order; empty for
  /// input placeholders. Asserts that the node exists.
  std::vector<std::string> nodeInputs(const std::string &Name) const;

  /// The context backing the compatibility wrappers below. Exclusive
  /// single-threaded owners (the Trainer's hot loop) use it directly for
  /// the move-in input path while keeping per-graph pass-local state —
  /// e.g. dropout mask streams — continuous across calls, exactly as
  /// before the model/context split.
  ExecContext &defaultContext() {
    DefaultCtx.bind(*this);
    return DefaultCtx;
  }

  /// Binds \p Value to the input placeholder \p Name in the default
  /// context (copies the tensor; ExecContext::setInput has a move-in
  /// path).
  void setInput(const std::string &Name, const Tensor &Value);

  /// Runs every node in topological order in the default context.
  void forward(bool Training);

  /// The most recent default-context activation of node \p Name.
  const Tensor &activation(const std::string &Name) const;

  /// The default-context output gradient of node \p Name, or null if none
  /// flowed there in the most recent backward() pass.
  const Tensor *outputGradient(const std::string &Name) const;

  /// Zeroes all parameter gradients.
  void zeroGrads();

  /// Accumulates \p Grad into the default-context output gradient of node
  /// \p Name. Shapes must match the node's current activation.
  void seedGradient(const std::string &Name, const Tensor &Grad);

  /// Propagates all seeded default-context gradients back to every
  /// trainable parameter. Frozen subgraphs are skipped entirely.
  void backward();

  /// Marks node \p Name (not) trainable. Frozen nodes keep their
  /// parameters fixed and do not receive gradient flow from below.
  void setTrainable(const std::string &Name, bool Trainable);

  /// Marks every node (not) trainable.
  void setAllTrainable(bool Trainable);

  /// Parameters of all currently trainable nodes.
  std::vector<Param *> trainableParams();

  /// All persistent state keyed by "node/sK" (layer state index K);
  /// includes non-trainable state such as batchnorm running stats.
  std::map<std::string, Param *> namedState();

  /// Randomly initializes every layer's parameters.
  void initParams(Rng &Generator);

  /// Total trainable scalar count over the whole graph (the paper's
  /// "model size" metric counts Conv/Dense weights; see
  /// pruning/ModelSize.h for that accounting).
  size_t paramCount();

  /// Names of all nodes in topological order.
  std::vector<std::string> nodeNames() const;

  /// Renders the graph in Graphviz dot format: one node per layer
  /// (labelled with its kind and parameter count; frozen nodes dashed),
  /// one edge per data dependency. Debugging/visualization aid for the
  /// multiplexing structures (`dot -Tsvg`).
  std::string toDot(const std::string &GraphName = "wootz") const;

private:
  friend class ExecContext;

  /// Topology-plus-parameters node record. Pass-local tensors live in
  /// ExecContext::Slot, one per node per context.
  struct Node {
    std::string Name;
    std::unique_ptr<Layer> NodeLayer; ///< Null for input placeholders.
    std::vector<int> Inputs;
    bool Trainable = true;
  };

  int indexOf(const std::string &Name) const;
  /// Lazily recomputes the carries-gradient flags after topology or
  /// trainability changes.
  void updateCarries();

  std::vector<Node> Nodes;
  std::map<std::string, int> NameToIndex;
  std::vector<bool> Carries; ///< Node has a trainable ancestor-or-self.
  bool CarriesValid = false;
  /// Backs the single-threaded compatibility wrappers above.
  ExecContext DefaultCtx;
};

} // namespace wootz

#endif // WOOTZ_NN_GRAPH_H
