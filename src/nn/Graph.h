//===- nn/Graph.h - DAG network runtime ------------------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A directed-acyclic network of layers, the runtime counterpart of the
/// multiplexing model the Wootz compiler generates. A single Graph can
/// host the full (teacher) model and several pruned tuning blocks side by
/// side: nodes are individually freezable, and backward propagation stops
/// automatically at frozen subgraphs, which is exactly what Teacher-
/// Student pre-training needs (§6.1 of the paper).
///
/// Usage for one training step:
/// \code
///   G.setInput("input", Batch);
///   G.forward(/*Training=*/true);
///   G.zeroGrads();
///   double Loss = softmaxCrossEntropy(G.activation("logits"), Labels, Grad);
///   G.seedGradient("logits", Grad);
///   G.backward();
///   Optimizer.step(G.trainableParams());
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_NN_GRAPH_H
#define WOOTZ_NN_GRAPH_H

#include "src/nn/Layer.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace wootz {

/// A DAG of named layer nodes with forward/backward execution.
class Graph {
public:
  /// Declares an input placeholder named \p Name.
  void addInput(const std::string &Name);

  /// Adds a layer node consuming the named producer nodes, which must
  /// already exist (so insertion order is a topological order). Returns
  /// the node's index.
  int addNode(const std::string &Name, std::unique_ptr<Layer> NodeLayer,
              const std::vector<std::string> &InputNames);

  /// True if a node with this name exists.
  bool hasNode(const std::string &Name) const;

  /// The layer behind \p Name; asserts that the node exists and is not an
  /// input placeholder.
  Layer &layer(const std::string &Name);

  /// Binds \p Value to the input placeholder \p Name (copies the tensor).
  void setInput(const std::string &Name, const Tensor &Value);

  /// Runs every node in topological order.
  void forward(bool Training);

  /// The most recent activation of node \p Name. Valid after forward().
  const Tensor &activation(const std::string &Name) const;

  /// The gradient of the loss w.r.t. node \p Name's output from the most
  /// recent backward() pass, or null if none flowed there this pass.
  /// Used by data-driven filter-importance criteria (pruning/Importance).
  const Tensor *outputGradient(const std::string &Name) const;

  /// Zeroes all parameter gradients.
  void zeroGrads();

  /// Accumulates \p Grad into the output gradient of node \p Name.
  /// Shapes must match the node's current activation.
  void seedGradient(const std::string &Name, const Tensor &Grad);

  /// Propagates all seeded gradients back to every trainable parameter.
  /// Frozen subgraphs (no trainable ancestors) are skipped entirely.
  void backward();

  /// Marks node \p Name (not) trainable. Frozen nodes keep their
  /// parameters fixed and do not receive gradient flow from below.
  void setTrainable(const std::string &Name, bool Trainable);

  /// Marks every node (not) trainable.
  void setAllTrainable(bool Trainable);

  /// Parameters of all currently trainable nodes.
  std::vector<Param *> trainableParams();

  /// All persistent state keyed by "node/sK" (layer state index K);
  /// includes non-trainable state such as batchnorm running stats.
  std::map<std::string, Param *> namedState();

  /// Randomly initializes every layer's parameters.
  void initParams(Rng &Generator);

  /// Total trainable scalar count over the whole graph (the paper's
  /// "model size" metric counts Conv/Dense weights; see
  /// pruning/ModelSize.h for that accounting).
  size_t paramCount();

  /// Names of all nodes in topological order.
  std::vector<std::string> nodeNames() const;

  /// Renders the graph in Graphviz dot format: one node per layer
  /// (labelled with its kind and parameter count; frozen nodes dashed),
  /// one edge per data dependency. Debugging/visualization aid for the
  /// multiplexing structures (`dot -Tsvg`).
  std::string toDot(const std::string &GraphName = "wootz") const;

private:
  struct Node {
    std::string Name;
    std::unique_ptr<Layer> NodeLayer; ///< Null for input placeholders.
    std::vector<int> Inputs;
    bool Trainable = true;

    Tensor Activation;
    Tensor GradOut;
    uint64_t GradPassId = 0; ///< Pass in which GradOut was last zeroed.
    LayerScratch Scratch;
  };

  int indexOf(const std::string &Name) const;
  /// Lazily recomputes the carries-gradient flags after topology or
  /// trainability changes.
  void updateCarries();
  /// Ensures \p N's GradOut matches its activation and is zeroed for the
  /// current pass.
  void ensureGradBuffer(Node &N);

  std::vector<Node> Nodes;
  std::map<std::string, int> NameToIndex;
  std::vector<bool> Carries; ///< Node has a trainable ancestor-or-self.
  bool CarriesValid = false;
  uint64_t PassId = 0;
};

} // namespace wootz

#endif // WOOTZ_NN_GRAPH_H
