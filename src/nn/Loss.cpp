//===- nn/Loss.cpp ---------------------------------------------------------===//

#include "src/nn/Loss.h"

#include "src/tensor/Ops.h"

#include <cassert>
#include <cmath>

using namespace wootz;

double wootz::softmaxCrossEntropy(const Tensor &Logits,
                                  const std::vector<int> &Labels,
                                  Tensor &GradLogits) {
  assert(Logits.shape().rank() == 2 && "logits must be [batch, classes]");
  const int Batch = Logits.shape()[0];
  const int Classes = Logits.shape()[1];
  assert(static_cast<int>(Labels.size()) == Batch &&
         "label count must match the batch");
  if (GradLogits.shape() != Logits.shape() || GradLogits.empty())
    GradLogits = Tensor(Logits.shape());

  double TotalLoss = 0.0;
  const float InvBatch = 1.0f / static_cast<float>(Batch);
  for (int N = 0; N < Batch; ++N) {
    const float *Row = Logits.data() + static_cast<size_t>(N) * Classes;
    float *GradRow = GradLogits.data() + static_cast<size_t>(N) * Classes;
    // Numerically stable softmax: shift by the row maximum.
    float MaxLogit = Row[0];
    for (int C = 1; C < Classes; ++C)
      MaxLogit = std::max(MaxLogit, Row[C]);
    double Denominator = 0.0;
    for (int C = 0; C < Classes; ++C)
      Denominator += std::exp(static_cast<double>(Row[C]) - MaxLogit);
    const int Label = Labels[N];
    assert(Label >= 0 && Label < Classes && "label out of range");
    TotalLoss -= (static_cast<double>(Row[Label]) - MaxLogit -
                  std::log(Denominator));
    for (int C = 0; C < Classes; ++C) {
      const double Probability =
          std::exp(static_cast<double>(Row[C]) - MaxLogit) / Denominator;
      GradRow[C] = static_cast<float>(Probability) * InvBatch;
    }
    GradRow[Label] -= InvBatch;
  }
  return TotalLoss / Batch;
}

double wootz::accuracyFromLogits(const Tensor &Logits,
                                 const std::vector<int> &Labels) {
  assert(Logits.shape().rank() == 2 && "logits must be [batch, classes]");
  const int Batch = Logits.shape()[0];
  const int Classes = Logits.shape()[1];
  int Correct = 0;
  for (int N = 0; N < Batch; ++N)
    if (argmax(Logits.data() + static_cast<size_t>(N) * Classes, Classes) ==
        Labels[N])
      ++Correct;
  return static_cast<double>(Correct) / Batch;
}

/// Row-wise softmax at a temperature (numerically stabilized).
static void softmaxRows(const Tensor &Logits, float Temperature,
                        std::vector<double> &Probabilities) {
  const int Batch = Logits.shape()[0];
  const int Classes = Logits.shape()[1];
  Probabilities.resize(static_cast<size_t>(Batch) * Classes);
  for (int N = 0; N < Batch; ++N) {
    const float *Row = Logits.data() + static_cast<size_t>(N) * Classes;
    double MaxLogit = Row[0];
    for (int C = 1; C < Classes; ++C)
      MaxLogit = std::max(MaxLogit, static_cast<double>(Row[C]));
    double Denominator = 0.0;
    for (int C = 0; C < Classes; ++C)
      Denominator += std::exp((Row[C] - MaxLogit) / Temperature);
    for (int C = 0; C < Classes; ++C)
      Probabilities[static_cast<size_t>(N) * Classes + C] =
          std::exp((Row[C] - MaxLogit) / Temperature) / Denominator;
  }
}

double wootz::distillationLoss(const Tensor &StudentLogits,
                               const Tensor &TeacherLogits,
                               float Temperature, Tensor &GradStudent) {
  assert(StudentLogits.shape() == TeacherLogits.shape() &&
         StudentLogits.shape().rank() == 2 &&
         "distillation needs matching [batch, classes] logits");
  assert(Temperature > 0.0f && "temperature must be positive");
  const int Batch = StudentLogits.shape()[0];
  const int Classes = StudentLogits.shape()[1];
  if (GradStudent.shape() != StudentLogits.shape() || GradStudent.empty())
    GradStudent = Tensor(StudentLogits.shape());

  std::vector<double> StudentProb;
  std::vector<double> TeacherProb;
  softmaxRows(StudentLogits, Temperature, StudentProb);
  softmaxRows(TeacherLogits, Temperature, TeacherProb);

  // Loss = T^2 * mean_n sum_c p_t(c) * (log p_t(c) - log p_s(c));
  // dLoss/ds = T * (p_s - p_t) / batch.
  double TotalLoss = 0.0;
  const double T2 = static_cast<double>(Temperature) * Temperature;
  const float GradScale = Temperature / static_cast<float>(Batch);
  for (size_t I = 0; I < StudentProb.size(); ++I) {
    if (TeacherProb[I] > 1e-12)
      TotalLoss +=
          TeacherProb[I] * (std::log(TeacherProb[I]) -
                            std::log(std::max(StudentProb[I], 1e-12)));
    GradStudent[I] = GradScale * static_cast<float>(StudentProb[I] -
                                                    TeacherProb[I]);
  }
  return T2 * TotalLoss / Batch;
}

double wootz::l2Reconstruction(const Tensor &Pred, const Tensor &Target,
                               Tensor &GradPred) {
  assert(Pred.shape() == Target.shape() &&
         "reconstruction loss requires matching shapes");
  if (GradPred.shape() != Pred.shape() || GradPred.empty())
    GradPred = Tensor(Pred.shape());
  const size_t Count = Pred.size();
  const float InvCount = 1.0f / static_cast<float>(Count);
  double TotalLoss = 0.0;
  for (size_t I = 0; I < Count; ++I) {
    const float Diff = Pred[I] - Target[I];
    TotalLoss += 0.5 * static_cast<double>(Diff) * Diff;
    GradPred[I] = Diff * InvCount;
  }
  return TotalLoss / static_cast<double>(Count);
}
