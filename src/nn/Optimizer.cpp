//===- nn/Optimizer.cpp ----------------------------------------------------===//

#include "src/nn/Optimizer.h"

using namespace wootz;

void SgdOptimizer::step(const std::vector<Param *> &Params) {
  for (Param *P : Params) {
    const size_t Count = P->Value.size();
    std::vector<float> &V = Velocity[P];
    if (V.size() != Count)
      V.assign(Count, 0.0f);
    float *Value = P->Value.data();
    const float *Grad = P->Grad.data();
    for (size_t I = 0; I < Count; ++I) {
      const float Update = Grad[I] + WeightDecay * Value[I];
      V[I] = Momentum * V[I] + Update;
      Value[I] -= LearningRate * V[I];
    }
  }
}
