//===- nn/Graph.cpp --------------------------------------------------------===//

#include "src/nn/Graph.h"

#include "src/support/Error.h"

using namespace wootz;

void Graph::addInput(const std::string &Name) {
  assert(!hasNode(Name) && "duplicate node name");
  Node N;
  N.Name = Name;
  NameToIndex[Name] = static_cast<int>(Nodes.size());
  Nodes.push_back(std::move(N));
  CarriesValid = false;
}

int Graph::addNode(const std::string &Name, std::unique_ptr<Layer> NodeLayer,
                   const std::vector<std::string> &InputNames) {
  assert(!hasNode(Name) && "duplicate node name");
  assert(NodeLayer && "addNode requires a layer");
  Node N;
  N.Name = Name;
  N.NodeLayer = std::move(NodeLayer);
  for (const std::string &InputName : InputNames) {
    const int Index = indexOf(InputName);
    assert(Index >= 0 && "node input must be defined before use");
    N.Inputs.push_back(Index);
  }
  const int Index = static_cast<int>(Nodes.size());
  NameToIndex[Name] = Index;
  Nodes.push_back(std::move(N));
  CarriesValid = false;
  return Index;
}

bool Graph::hasNode(const std::string &Name) const {
  return NameToIndex.count(Name) != 0;
}

Layer &Graph::layer(const std::string &Name) {
  const int Index = indexOf(Name);
  assert(Index >= 0 && "unknown node");
  assert(Nodes[Index].NodeLayer && "input placeholders have no layer");
  return *Nodes[Index].NodeLayer;
}

int Graph::indexOf(const std::string &Name) const {
  auto It = NameToIndex.find(Name);
  return It == NameToIndex.end() ? -1 : It->second;
}

void Graph::setInput(const std::string &Name, const Tensor &Value) {
  const int Index = indexOf(Name);
  assert(Index >= 0 && !Nodes[Index].NodeLayer &&
         "setInput target must be an input placeholder");
  Nodes[Index].Activation = Value;
}

void Graph::forward(bool Training) {
  ++PassId;
  std::vector<const Tensor *> Inputs;
  std::vector<Shape> InputShapes;
  for (Node &N : Nodes) {
    if (!N.NodeLayer) {
      assert(!N.Activation.empty() && "input placeholder was never bound");
      continue;
    }
    Inputs.clear();
    InputShapes.clear();
    for (int Index : N.Inputs) {
      Inputs.push_back(&Nodes[Index].Activation);
      InputShapes.push_back(Nodes[Index].Activation.shape());
    }
    const Shape OutShape = N.NodeLayer->outputShape(InputShapes);
    if (N.Activation.shape() != OutShape || N.Activation.empty())
      N.Activation = Tensor(OutShape);
    N.NodeLayer->forward(Inputs, N.Activation, N.Scratch, Training);
  }
}

const Tensor &Graph::activation(const std::string &Name) const {
  const int Index = indexOf(Name);
  assert(Index >= 0 && "unknown node");
  return Nodes[Index].Activation;
}

const Tensor *Graph::outputGradient(const std::string &Name) const {
  const int Index = indexOf(Name);
  assert(Index >= 0 && "unknown node");
  const Node &N = Nodes[Index];
  return N.GradPassId == PassId ? &N.GradOut : nullptr;
}

void Graph::zeroGrads() {
  for (Node &N : Nodes) {
    if (!N.NodeLayer)
      continue;
    for (Param *P : N.NodeLayer->params())
      P->Grad.zero();
  }
}

void Graph::ensureGradBuffer(Node &N) {
  if (N.GradPassId == PassId)
    return;
  if (N.GradOut.shape() != N.Activation.shape() || N.GradOut.empty())
    N.GradOut = Tensor(N.Activation.shape());
  else
    N.GradOut.zero();
  N.GradPassId = PassId;
}

void Graph::seedGradient(const std::string &Name, const Tensor &Grad) {
  const int Index = indexOf(Name);
  assert(Index >= 0 && "unknown node");
  Node &N = Nodes[Index];
  assert(Grad.shape() == N.Activation.shape() &&
         "gradient seed shape must match the activation");
  ensureGradBuffer(N);
  for (size_t I = 0; I < Grad.size(); ++I)
    N.GradOut[I] += Grad[I];
}

void Graph::updateCarries() {
  if (CarriesValid)
    return;
  Carries.assign(Nodes.size(), false);
  for (size_t I = 0; I < Nodes.size(); ++I) {
    Node &N = Nodes[I];
    bool NodeCarries =
        N.Trainable && N.NodeLayer && !N.NodeLayer->params().empty();
    for (int Input : N.Inputs)
      NodeCarries = NodeCarries || Carries[Input];
    Carries[I] = NodeCarries;
  }
  CarriesValid = true;
}

void Graph::backward() {
  updateCarries();
  std::vector<const Tensor *> Inputs;
  std::vector<Tensor *> GradInputs;
  for (size_t I = Nodes.size(); I-- > 0;) {
    Node &N = Nodes[I];
    // Only nodes whose output gradient was produced this pass take part.
    if (!N.NodeLayer || N.GradPassId != PassId)
      continue;
    Inputs.clear();
    GradInputs.clear();
    for (int Input : N.Inputs) {
      Node &Producer = Nodes[Input];
      Inputs.push_back(&Producer.Activation);
      if (Carries[Input] && Producer.NodeLayer) {
        ensureGradBuffer(Producer);
        GradInputs.push_back(&Producer.GradOut);
      } else {
        GradInputs.push_back(nullptr);
      }
    }
    N.NodeLayer->backward(Inputs, N.Activation, N.GradOut, N.Scratch,
                          GradInputs);
  }
}

void Graph::setTrainable(const std::string &Name, bool Trainable) {
  const int Index = indexOf(Name);
  assert(Index >= 0 && "unknown node");
  Nodes[Index].Trainable = Trainable;
  CarriesValid = false;
}

void Graph::setAllTrainable(bool Trainable) {
  for (Node &N : Nodes)
    N.Trainable = Trainable;
  CarriesValid = false;
}

std::vector<Param *> Graph::trainableParams() {
  std::vector<Param *> Params;
  for (Node &N : Nodes) {
    if (!N.NodeLayer || !N.Trainable)
      continue;
    for (Param *P : N.NodeLayer->params())
      Params.push_back(P);
  }
  return Params;
}

std::map<std::string, Param *> Graph::namedState() {
  std::map<std::string, Param *> State;
  for (Node &N : Nodes) {
    if (!N.NodeLayer)
      continue;
    const std::vector<Param *> NodeState = N.NodeLayer->state();
    for (size_t I = 0; I < NodeState.size(); ++I)
      State[N.Name + "/s" + std::to_string(I)] = NodeState[I];
  }
  return State;
}

void Graph::initParams(Rng &Generator) {
  for (Node &N : Nodes)
    if (N.NodeLayer)
      N.NodeLayer->initParams(Generator);
}

size_t Graph::paramCount() {
  size_t Count = 0;
  for (Node &N : Nodes)
    if (N.NodeLayer)
      Count += N.NodeLayer->paramCount();
  return Count;
}

std::string Graph::toDot(const std::string &GraphName) const {
  std::string Out = "digraph \"" + GraphName + "\" {\n";
  Out += "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  auto quoted = [](const std::string &Name) {
    return "\"" + Name + "\"";
  };
  for (const Node &N : Nodes) {
    Out += "  " + quoted(N.Name) + " [label=\"" + N.Name;
    if (N.NodeLayer) {
      Out += "\\n" + N.NodeLayer->kind();
      const size_t Params = N.NodeLayer->paramCount();
      if (Params > 0)
        Out += " (" + std::to_string(Params) + ")";
    } else {
      Out += "\\ninput";
    }
    Out += "\"";
    if (N.NodeLayer && !N.Trainable)
      Out += ", style=dashed";
    if (!N.NodeLayer)
      Out += ", shape=ellipse";
    Out += "];\n";
  }
  for (const Node &N : Nodes)
    for (int Input : N.Inputs)
      Out += "  " + quoted(Nodes[Input].Name) + " -> " + quoted(N.Name) +
             ";\n";
  return Out + "}\n";
}

std::vector<std::string> Graph::nodeNames() const {
  std::vector<std::string> Names;
  Names.reserve(Nodes.size());
  for (const Node &N : Nodes)
    Names.push_back(N.Name);
  return Names;
}
