//===- nn/Graph.cpp --------------------------------------------------------===//

#include "src/nn/Graph.h"

#include "src/support/Error.h"

using namespace wootz;

//===----------------------------------------------------------------------===//
// ExecContext
//===----------------------------------------------------------------------===//

void ExecContext::bind(const Graph &G) {
  if (Bound != &G) {
    // Rebinding to a different graph invalidates all pass-local state.
    Slots.clear();
    PassId = 0;
    Bound = &G;
  }
  syncSlots();
}

void ExecContext::syncSlots() {
  assert(Bound && "ExecContext is not bound to a graph");
  // Graphs are append-only, so slots only ever grow; existing slots (and
  // their buffers) survive so contexts can be reused across batches.
  if (Slots.size() != Bound->Nodes.size())
    Slots.resize(Bound->Nodes.size());
}

void ExecContext::setInput(const std::string &Name, const Tensor &Value) {
  syncSlots();
  const int Index = Bound->indexOf(Name);
  assert(Index >= 0 && !Bound->Nodes[Index].NodeLayer &&
         "setInput target must be an input placeholder");
  Slots[Index].Activation = Value;
}

void ExecContext::setInput(const std::string &Name, Tensor &&Value) {
  syncSlots();
  const int Index = Bound->indexOf(Name);
  assert(Index >= 0 && !Bound->Nodes[Index].NodeLayer &&
         "setInput target must be an input placeholder");
  Slots[Index].Activation = std::move(Value);
}

void ExecContext::forward(const Graph &G, bool Training) {
  bind(G);
  ++PassId;
  std::vector<const Tensor *> Inputs;
  std::vector<Shape> InputShapes;
  for (size_t I = 0; I < G.Nodes.size(); ++I) {
    const Graph::Node &N = G.Nodes[I];
    Slot &S = Slots[I];
    if (!N.NodeLayer) {
      assert(!S.Activation.empty() && "input placeholder was never bound");
      continue;
    }
    Inputs.clear();
    InputShapes.clear();
    for (int Index : N.Inputs) {
      Inputs.push_back(&Slots[Index].Activation);
      InputShapes.push_back(Slots[Index].Activation.shape());
    }
    const Shape OutShape = N.NodeLayer->outputShape(InputShapes);
    if (S.Activation.shape() != OutShape || S.Activation.empty())
      S.Activation = Tensor(OutShape);
    N.NodeLayer->forward(Inputs, S.Activation, S.Scratch, Training);
  }
}

const Tensor &ExecContext::activation(const std::string &Name) const {
  assert(Bound && "ExecContext is not bound to a graph");
  const int Index = Bound->indexOf(Name);
  assert(Index >= 0 && "unknown node");
  assert(static_cast<size_t>(Index) < Slots.size() &&
         "node was added after the last forward pass");
  return Slots[Index].Activation;
}

const Tensor *ExecContext::outputGradient(const std::string &Name) const {
  assert(Bound && "ExecContext is not bound to a graph");
  const int Index = Bound->indexOf(Name);
  assert(Index >= 0 && "unknown node");
  assert(static_cast<size_t>(Index) < Slots.size() &&
         "node was added after the last forward pass");
  const Slot &S = Slots[Index];
  return S.GradPassId == PassId ? &S.GradOut : nullptr;
}

Result<const Tensor *> ExecContext::findActivation(
    const std::string &Name) const {
  if (!Bound)
    return Error::failure("execution context is not bound to a graph");
  const int Index = Bound->indexOf(Name);
  if (Index < 0 || static_cast<size_t>(Index) >= Slots.size())
    return Error::failure("unknown node \"" + Name + "\"");
  const Slot &S = Slots[Index];
  if (S.Activation.empty())
    return Error::failure("node \"" + Name +
                          "\" has no activation: run forward() first");
  return static_cast<const Tensor *>(&S.Activation);
}

Result<const Tensor *> ExecContext::findOutputGradient(
    const std::string &Name) const {
  if (!Bound)
    return Error::failure("execution context is not bound to a graph");
  const int Index = Bound->indexOf(Name);
  if (Index < 0 || static_cast<size_t>(Index) >= Slots.size())
    return Error::failure("unknown node \"" + Name + "\"");
  const Slot &S = Slots[Index];
  return S.GradPassId == PassId ? static_cast<const Tensor *>(&S.GradOut)
                                : nullptr;
}

void ExecContext::ensureGradBuffer(Slot &S) {
  if (S.GradPassId == PassId)
    return;
  if (S.GradOut.shape() != S.Activation.shape() || S.GradOut.empty())
    S.GradOut = Tensor(S.Activation.shape());
  else
    S.GradOut.zero();
  S.GradPassId = PassId;
}

void ExecContext::seedGradient(const std::string &Name, const Tensor &Grad) {
  assert(Bound && "ExecContext is not bound to a graph");
  syncSlots();
  const int Index = Bound->indexOf(Name);
  assert(Index >= 0 && "unknown node");
  Slot &S = Slots[Index];
  assert(Grad.shape() == S.Activation.shape() &&
         "gradient seed shape must match the activation");
  ensureGradBuffer(S);
  for (size_t I = 0; I < Grad.size(); ++I)
    S.GradOut[I] += Grad[I];
}

void ExecContext::backward(Graph &G) {
  assert(Bound == &G && "backward on a graph this context never ran");
  syncSlots();
  G.updateCarries();
  std::vector<const Tensor *> Inputs;
  std::vector<Tensor *> GradInputs;
  for (size_t I = G.Nodes.size(); I-- > 0;) {
    Graph::Node &N = G.Nodes[I];
    Slot &S = Slots[I];
    // Only nodes whose output gradient was produced this pass take part.
    if (!N.NodeLayer || S.GradPassId != PassId)
      continue;
    Inputs.clear();
    GradInputs.clear();
    for (int Input : N.Inputs) {
      Slot &Producer = Slots[Input];
      Inputs.push_back(&Producer.Activation);
      if (G.Carries[Input] && G.Nodes[Input].NodeLayer) {
        ensureGradBuffer(Producer);
        GradInputs.push_back(&Producer.GradOut);
      } else {
        GradInputs.push_back(nullptr);
      }
    }
    N.NodeLayer->backward(Inputs, S.Activation, S.GradOut, S.Scratch,
                          GradInputs);
  }
}

//===----------------------------------------------------------------------===//
// Graph
//===----------------------------------------------------------------------===//

Graph::Graph(Graph &&Other) noexcept
    : Nodes(std::move(Other.Nodes)),
      NameToIndex(std::move(Other.NameToIndex)),
      Carries(std::move(Other.Carries)), CarriesValid(Other.CarriesValid),
      DefaultCtx(std::move(Other.DefaultCtx)) {
  // The default context can only ever be bound to its owning graph; after
  // the move that graph lives here.
  if (DefaultCtx.Bound)
    DefaultCtx.Bound = this;
}

Graph &Graph::operator=(Graph &&Other) noexcept {
  if (this == &Other)
    return *this;
  Nodes = std::move(Other.Nodes);
  NameToIndex = std::move(Other.NameToIndex);
  Carries = std::move(Other.Carries);
  CarriesValid = Other.CarriesValid;
  DefaultCtx = std::move(Other.DefaultCtx);
  if (DefaultCtx.Bound)
    DefaultCtx.Bound = this;
  return *this;
}

void Graph::addInput(const std::string &Name) {
  assert(!hasNode(Name) && "duplicate node name");
  Node N;
  N.Name = Name;
  NameToIndex[Name] = static_cast<int>(Nodes.size());
  Nodes.push_back(std::move(N));
  CarriesValid = false;
}

int Graph::addNode(const std::string &Name, std::unique_ptr<Layer> NodeLayer,
                   const std::vector<std::string> &InputNames) {
  assert(!hasNode(Name) && "duplicate node name");
  assert(NodeLayer && "addNode requires a layer");
  Node N;
  N.Name = Name;
  N.NodeLayer = std::move(NodeLayer);
  for (const std::string &InputName : InputNames) {
    const int Index = indexOf(InputName);
    assert(Index >= 0 && "node input must be defined before use");
    N.Inputs.push_back(Index);
  }
  const int Index = static_cast<int>(Nodes.size());
  NameToIndex[Name] = Index;
  Nodes.push_back(std::move(N));
  CarriesValid = false;
  return Index;
}

bool Graph::hasNode(const std::string &Name) const {
  return NameToIndex.count(Name) != 0;
}

Layer &Graph::layer(const std::string &Name) {
  const int Index = indexOf(Name);
  assert(Index >= 0 && "unknown node");
  assert(Nodes[Index].NodeLayer && "input placeholders have no layer");
  return *Nodes[Index].NodeLayer;
}

const Layer *Graph::findLayer(const std::string &Name) const {
  const int Index = indexOf(Name);
  return Index < 0 ? nullptr : Nodes[Index].NodeLayer.get();
}

std::vector<std::string> Graph::nodeInputs(const std::string &Name) const {
  const int Index = indexOf(Name);
  assert(Index >= 0 && "unknown node");
  std::vector<std::string> Names;
  for (int In : Nodes[Index].Inputs)
    Names.push_back(Nodes[In].Name);
  return Names;
}

int Graph::indexOf(const std::string &Name) const {
  auto It = NameToIndex.find(Name);
  return It == NameToIndex.end() ? -1 : It->second;
}

void Graph::setInput(const std::string &Name, const Tensor &Value) {
  DefaultCtx.bind(*this);
  DefaultCtx.setInput(Name, Value);
}

void Graph::forward(bool Training) { DefaultCtx.forward(*this, Training); }

const Tensor &Graph::activation(const std::string &Name) const {
  assert(DefaultCtx.Bound == this &&
         "activation read before any forward pass");
  return DefaultCtx.activation(Name);
}

const Tensor *Graph::outputGradient(const std::string &Name) const {
  assert(DefaultCtx.Bound == this &&
         "gradient read before any forward pass");
  return DefaultCtx.outputGradient(Name);
}

void Graph::zeroGrads() {
  for (Node &N : Nodes) {
    if (!N.NodeLayer)
      continue;
    for (Param *P : N.NodeLayer->params())
      P->Grad.zero();
  }
}

void Graph::seedGradient(const std::string &Name, const Tensor &Grad) {
  DefaultCtx.bind(*this);
  DefaultCtx.seedGradient(Name, Grad);
}

void Graph::updateCarries() {
  if (CarriesValid)
    return;
  Carries.assign(Nodes.size(), false);
  for (size_t I = 0; I < Nodes.size(); ++I) {
    Node &N = Nodes[I];
    bool NodeCarries =
        N.Trainable && N.NodeLayer && !N.NodeLayer->params().empty();
    for (int Input : N.Inputs)
      NodeCarries = NodeCarries || Carries[Input];
    Carries[I] = NodeCarries;
  }
  CarriesValid = true;
}

void Graph::backward() { DefaultCtx.backward(*this); }

void Graph::setTrainable(const std::string &Name, bool Trainable) {
  const int Index = indexOf(Name);
  assert(Index >= 0 && "unknown node");
  Nodes[Index].Trainable = Trainable;
  CarriesValid = false;
}

void Graph::setAllTrainable(bool Trainable) {
  for (Node &N : Nodes)
    N.Trainable = Trainable;
  CarriesValid = false;
}

std::vector<Param *> Graph::trainableParams() {
  std::vector<Param *> Params;
  for (Node &N : Nodes) {
    if (!N.NodeLayer || !N.Trainable)
      continue;
    for (Param *P : N.NodeLayer->params())
      Params.push_back(P);
  }
  return Params;
}

std::map<std::string, Param *> Graph::namedState() {
  std::map<std::string, Param *> State;
  for (Node &N : Nodes) {
    if (!N.NodeLayer)
      continue;
    const std::vector<Param *> NodeState = N.NodeLayer->state();
    for (size_t I = 0; I < NodeState.size(); ++I)
      State[N.Name + "/s" + std::to_string(I)] = NodeState[I];
  }
  return State;
}

void Graph::initParams(Rng &Generator) {
  for (Node &N : Nodes)
    if (N.NodeLayer)
      N.NodeLayer->initParams(Generator);
}

size_t Graph::paramCount() {
  size_t Count = 0;
  for (Node &N : Nodes)
    if (N.NodeLayer)
      Count += N.NodeLayer->paramCount();
  return Count;
}

std::string Graph::toDot(const std::string &GraphName) const {
  std::string Out = "digraph \"" + GraphName + "\" {\n";
  Out += "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  auto quoted = [](const std::string &Name) {
    return "\"" + Name + "\"";
  };
  for (const Node &N : Nodes) {
    Out += "  " + quoted(N.Name) + " [label=\"" + N.Name;
    if (N.NodeLayer) {
      Out += "\\n" + N.NodeLayer->kind();
      const size_t Params = N.NodeLayer->paramCount();
      if (Params > 0)
        Out += " (" + std::to_string(Params) + ")";
    } else {
      Out += "\\ninput";
    }
    Out += "\"";
    if (N.NodeLayer && !N.Trainable)
      Out += ", style=dashed";
    if (!N.NodeLayer)
      Out += ", shape=ellipse";
    Out += "];\n";
  }
  for (const Node &N : Nodes)
    for (int Input : N.Inputs)
      Out += "  " + quoted(Nodes[Input].Name) + " -> " + quoted(N.Name) +
             ";\n";
  return Out + "}\n";
}

std::vector<std::string> Graph::nodeNames() const {
  std::vector<std::string> Names;
  Names.reserve(Nodes.size());
  for (const Node &N : Nodes)
    Names.push_back(N.Name);
  return Names;
}
