//===- nn/Layers.cpp -------------------------------------------------------===//

#include "src/nn/Layers.h"

#include "src/tensor/Kernels.h"
#include "src/tensor/PackedWeights.h"

#include <cmath>
#include <cstring>
#include <memory>

using namespace wootz;

Layer::~Layer() = default;

size_t Layer::paramCount() {
  size_t Count = 0;
  for (Param *P : params())
    Count += P->Value.size();
  return Count;
}

//===----------------------------------------------------------------------===//
// Conv2D
//===----------------------------------------------------------------------===//

Conv2D::Conv2D(ConvGeometry Geometry, bool HasBias)
    : Geometry(Geometry), HasBias(HasBias),
      Weight(Shape{Geometry.OutChannels, Geometry.InChannels,
                   Geometry.KernelSize, Geometry.KernelSize}),
      Bias(Shape{Geometry.OutChannels}) {
  assert(Geometry.InChannels > 0 && Geometry.OutChannels > 0 &&
         Geometry.KernelSize > 0 && Geometry.Stride > 0 &&
         "invalid convolution geometry");
}

Shape Conv2D::outputShape(const std::vector<Shape> &InputShapes) const {
  assert(InputShapes.size() == 1 && InputShapes[0].rank() == 4 &&
         "conv expects one NCHW input");
  const Shape &In = InputShapes[0];
  assert(In[1] == Geometry.InChannels && "conv input channel mismatch");
  return Shape{In[0], Geometry.OutChannels, Geometry.outExtent(In[2]),
               Geometry.outExtent(In[3])};
}

void Conv2D::forward(const std::vector<const Tensor *> &Inputs, Tensor &Out,
                     LayerScratch &Scratch, bool Training) const {
  const Tensor &In = *Inputs[0];
  const int Batch = In.shape()[0];
  const int Height = In.shape()[2];
  const int Width = In.shape()[3];
  const int OutH = Geometry.outExtent(Height);
  const int OutW = Geometry.outExtent(Width);
  const int ColRows =
      Geometry.InChannels * Geometry.KernelSize * Geometry.KernelSize;
  const int ColCols = OutH * OutW;

  const float *WeightPtr = Weight.Value.data();
  const float *BiasPtr = HasBias ? Bias.Value.data() : nullptr;

  // Inference packs GEMM panels straight from the input image — no
  // materialized im2col matrix at all — reusing the weight panels the
  // process-wide cache packed on first sight of this weight tensor.
  // Any batch im2col buffer a previous training pass left behind is
  // released so evaluation holds no column memory.
  if (!Training) {
    if (!Scratch.Buffers.empty() && !Scratch.Buffers[0].empty())
      Scratch.Buffers[0] = Tensor();
    const std::shared_ptr<const PackedPanels> Packed =
        PackedWeightsCache::instance().convWeights(
            WeightPtr, Geometry.OutChannels, ColRows);
    convForwardFused(In.data(), Batch, Height, Width, Geometry,
                     Packed.get(), WeightPtr, BiasPtr,
                     /*FuseReLU=*/false, Out.data());
    return;
  }

  // Training keeps the whole batch's im2col expansion for backward to
  // reuse.
  if (Scratch.Buffers.empty())
    Scratch.Buffers.emplace_back();
  Tensor *Cols = &Scratch.Buffers[0];
  const Shape ColsShape{Batch, 1, ColRows, ColCols};
  if (Cols->shape() != ColsShape)
    *Cols = Tensor(ColsShape);

  const size_t InPlane = static_cast<size_t>(Geometry.InChannels) * Height *
                         Width;
  const size_t OutPlane =
      static_cast<size_t>(Geometry.OutChannels) * ColCols;
  const size_t ColsPlane = static_cast<size_t>(ColRows) * ColCols;

  // Inter-op parallelism: samples are independent, so the batch splits
  // across the kernel workers when the measured cost model says the
  // handoff pays for itself; the per-sample GEMM then runs serial on
  // its worker (kernelParallelFor does not nest). A serial decision
  // keeps the same chunk decomposition, so logits are unchanged.
  const double BatchFlops = 2.0 * Batch * OutPlane * ColRows;
  const size_t Grain = parallelWorthwhile(BatchFlops) ? 1 : Batch;
  kernelParallelFor(Batch, Grain, [&](size_t Begin, size_t End) {
    for (size_t N = Begin; N < End; ++N) {
      float *SampleCols = Cols->data() + N * ColsPlane;
      im2col(In.data() + N * InPlane, Geometry.InChannels, Height, Width,
             Geometry, SampleCols);
      float *OutSample = Out.data() + N * OutPlane;
      if (BiasPtr)
        gemmBias(WeightPtr, SampleCols, BiasPtr, OutSample,
                 Geometry.OutChannels, ColRows, ColCols);
      else
        gemm(WeightPtr, SampleCols, OutSample, Geometry.OutChannels,
             ColRows, ColCols);
    }
  });
}

void Conv2D::backward(const std::vector<const Tensor *> &Inputs,
                      const Tensor &Out, const Tensor &GradOut,
                      LayerScratch &Scratch,
                      const std::vector<Tensor *> &GradInputs) {
  (void)Out;
  const Tensor &In = *Inputs[0];
  const int Batch = In.shape()[0];
  const int Height = In.shape()[2];
  const int Width = In.shape()[3];
  const int OutH = Geometry.outExtent(Height);
  const int OutW = Geometry.outExtent(Width);
  const int ColRows =
      Geometry.InChannels * Geometry.KernelSize * Geometry.KernelSize;
  const int ColCols = OutH * OutW;

  const Shape ColsShape{Batch, 1, ColRows, ColCols};
  assert(!Scratch.Buffers.empty() && Scratch.Buffers[0].shape() == ColsShape &&
         "conv backward requires the training-mode forward pass's im2col "
         "buffer");
  (void)ColsShape;
  Tensor &Cols = Scratch.Buffers[0];
  const size_t ColsPlane = static_cast<size_t>(ColRows) * ColCols;
  const size_t OutPlane =
      static_cast<size_t>(Geometry.OutChannels) * ColCols;
  const size_t InPlane = static_cast<size_t>(Geometry.InChannels) * Height *
                         Width;

  Tensor *GradIn = GradInputs[0];
  const size_t WeightCount = Weight.Grad.size();
  const size_t BiasCount = static_cast<size_t>(Geometry.OutChannels);

  // Samples split across the kernel workers. Input gradients land in
  // disjoint per-sample planes; parameter gradients accumulate into
  // per-sample buffers that are reduced in sample order below, so the
  // result is bit-identical for any worker count (and matches the old
  // serial sample-by-sample accumulation order).
  std::vector<std::vector<float>> WeightGrads(Batch);
  std::vector<std::vector<float>> BiasGrads(HasBias ? Batch : 0);

  // Roughly three forward-sized GEMMs per sample (dW, dCols, col2im
  // traffic); fan out only when the measured cost model approves.
  const double BackwardFlops =
      3.0 * 2.0 * Batch * OutPlane * static_cast<double>(ColRows);
  const size_t Grain = parallelWorthwhile(BackwardFlops) ? 1 : Batch;
  kernelParallelFor(Batch, Grain, [&](size_t Begin, size_t End) {
    KernelScratch &Local = KernelScratch::forCurrentThread();
    for (size_t N = Begin; N < End; ++N) {
      const float *SampleCols = Cols.data() + N * ColsPlane;
      const float *GradOutSample = GradOut.data() + N * OutPlane;
      // dW(sample) = dOut * cols^T.
      std::vector<float> &WGrad = WeightGrads[N];
      WGrad.resize(WeightCount);
      gemmTransposeB(GradOutSample, SampleCols, WGrad.data(),
                     Geometry.OutChannels, ColCols, ColRows);
      if (HasBias) {
        std::vector<float> &BGrad = BiasGrads[N];
        BGrad.resize(BiasCount);
        for (int O = 0; O < Geometry.OutChannels; ++O) {
          const float *Plane =
              GradOutSample + static_cast<size_t>(O) * ColCols;
          float Total = 0.0f;
          for (int I = 0; I < ColCols; ++I)
            Total += Plane[I];
          BGrad[O] = Total;
        }
      }
      if (!GradIn)
        continue;
      // dCols = W^T * dOut, then scatter back with col2im.
      float *GradColsBuf = Local.GradCols.ensure(ColsPlane);
      gemmTransposeA(Weight.Value.data(), GradOutSample, GradColsBuf,
                     ColRows, Geometry.OutChannels, ColCols);
      col2im(GradColsBuf, Geometry.InChannels, Height, Width, Geometry,
             GradIn->data() + N * InPlane);
    }
  });

  for (int N = 0; N < Batch; ++N) {
    axpy(1.0f, WeightGrads[N].data(), Weight.Grad.data(), WeightCount);
    if (HasBias)
      axpy(1.0f, BiasGrads[N].data(), Bias.Grad.data(), BiasCount);
  }
}

std::vector<Param *> Conv2D::params() {
  if (HasBias)
    return {&Weight, &Bias};
  return {&Weight};
}

void Conv2D::initParams(Rng &Generator) {
  const float StdDev =
      std::sqrt(2.0f / static_cast<float>(Geometry.InChannels *
                                          Geometry.KernelSize *
                                          Geometry.KernelSize));
  for (size_t I = 0; I < Weight.Value.size(); ++I)
    Weight.Value[I] = StdDev * Generator.nextGaussian();
  Bias.Value.zero();
}

//===----------------------------------------------------------------------===//
// BatchNorm2D
//===----------------------------------------------------------------------===//

BatchNorm2D::BatchNorm2D(int Channels, float Momentum, float Epsilon)
    : Channels(Channels), Momentum(Momentum), Epsilon(Epsilon),
      Gamma(Shape{Channels}), Beta(Shape{Channels}),
      RunningMean(Shape{Channels}), RunningVar(Shape{Channels}) {
  Gamma.Value.fill(1.0f);
  RunningVar.Value.fill(1.0f);
}

Shape BatchNorm2D::outputShape(const std::vector<Shape> &InputShapes) const {
  assert(InputShapes.size() == 1 && InputShapes[0].rank() == 4 &&
         InputShapes[0][1] == Channels && "batchnorm channel mismatch");
  return InputShapes[0];
}

void BatchNorm2D::forward(const std::vector<const Tensor *> &Inputs,
                          Tensor &Out, LayerScratch &Scratch, bool Training) const {
  const Tensor &In = *Inputs[0];
  const int Batch = In.shape()[0];
  const int Height = In.shape()[2];
  const int Width = In.shape()[3];
  const int Spatial = Height * Width;
  const size_t PerSample = static_cast<size_t>(Channels) * Spatial;

  // Scratch: [0] normalized activations, [1] inverse stddev, [2] mean,
  // [3] batch variance (kept so the running-stat update below can run
  // after — and outside the lock of — the normalization loop).
  if (Scratch.Buffers.size() < 4)
    Scratch.Buffers.resize(4);
  Tensor &XHat = Scratch.Buffers[0];
  if (XHat.shape() != In.shape())
    XHat = Tensor(In.shape());
  Tensor &InvStd = Scratch.Buffers[1];
  Tensor &BatchMean = Scratch.Buffers[2];
  Tensor &BatchVar = Scratch.Buffers[3];
  if (InvStd.empty()) {
    InvStd = Tensor(Shape{Channels});
    BatchMean = Tensor(Shape{Channels});
    BatchVar = Tensor(Shape{Channels});
  }

  const double Count = static_cast<double>(Batch) * Spatial;
  for (int C = 0; C < Channels; ++C) {
    double Mean;
    double Var;
    if (Training) {
      double Total = 0.0;
      double TotalSq = 0.0;
      for (int N = 0; N < Batch; ++N) {
        const float *Plane =
            In.data() + N * PerSample + static_cast<size_t>(C) * Spatial;
        for (int I = 0; I < Spatial; ++I) {
          Total += Plane[I];
          TotalSq += static_cast<double>(Plane[I]) * Plane[I];
        }
      }
      Mean = Total / Count;
      Var = TotalSq / Count - Mean * Mean;
      if (Var < 0.0)
        Var = 0.0;
    } else {
      Mean = RunningMean.Value[C];
      Var = RunningVar.Value[C];
    }
    const float InvStdC =
        1.0f / std::sqrt(static_cast<float>(Var) + Epsilon);
    InvStd[C] = InvStdC;
    BatchMean[C] = static_cast<float>(Mean);
    BatchVar[C] = static_cast<float>(Var);
    const float GammaC = Gamma.Value[C];
    const float BetaC = Beta.Value[C];
    for (int N = 0; N < Batch; ++N) {
      const size_t Offset = N * PerSample + static_cast<size_t>(C) * Spatial;
      const float *InPlane = In.data() + Offset;
      float *XHatPlane = XHat.data() + Offset;
      float *OutPlane = Out.data() + Offset;
      for (int I = 0; I < Spatial; ++I) {
        const float Norm =
            (InPlane[I] - static_cast<float>(Mean)) * InvStdC;
        XHatPlane[I] = Norm;
        OutPlane[I] = GammaC * Norm + BetaC;
      }
    }
  }

  if (Training) {
    // Running statistics are the one piece of model state a (training)
    // forward writes; the lock keeps concurrent training forwards over
    // one shared layer race-free without serializing the normalization
    // work above. Training outputs never read the running stats, so
    // logits stay bit-identical to serial execution either way.
    std::lock_guard<std::mutex> Lock(StatsMutex);
    for (int C = 0; C < Channels; ++C) {
      RunningMean.Value[C] = Momentum * RunningMean.Value[C] +
                             (1.0f - Momentum) * BatchMean[C];
      RunningVar.Value[C] = Momentum * RunningVar.Value[C] +
                            (1.0f - Momentum) * BatchVar[C];
    }
  }
}

void BatchNorm2D::backward(const std::vector<const Tensor *> &Inputs,
                           const Tensor &Out, const Tensor &GradOut,
                           LayerScratch &Scratch,
                           const std::vector<Tensor *> &GradInputs) {
  (void)Out;
  const Tensor &In = *Inputs[0];
  const int Batch = In.shape()[0];
  const int Spatial = In.shape()[2] * In.shape()[3];
  const size_t PerSample = static_cast<size_t>(Channels) * Spatial;
  const Tensor &XHat = Scratch.Buffers[0];
  const Tensor &InvStd = Scratch.Buffers[1];
  Tensor *GradIn = GradInputs[0];
  const float Count = static_cast<float>(Batch * Spatial);

  for (int C = 0; C < Channels; ++C) {
    float DGamma = 0.0f;
    float DBeta = 0.0f;
    for (int N = 0; N < Batch; ++N) {
      const size_t Offset = N * PerSample + static_cast<size_t>(C) * Spatial;
      const float *GradPlane = GradOut.data() + Offset;
      const float *XHatPlane = XHat.data() + Offset;
      for (int I = 0; I < Spatial; ++I) {
        DGamma += GradPlane[I] * XHatPlane[I];
        DBeta += GradPlane[I];
      }
    }
    Gamma.Grad[C] += DGamma;
    Beta.Grad[C] += DBeta;
    if (!GradIn)
      continue;
    const float ScaleFactor = Gamma.Value[C] * InvStd[C] / Count;
    for (int N = 0; N < Batch; ++N) {
      const size_t Offset = N * PerSample + static_cast<size_t>(C) * Spatial;
      const float *GradPlane = GradOut.data() + Offset;
      const float *XHatPlane = XHat.data() + Offset;
      float *GradInPlane = GradIn->data() + Offset;
      for (int I = 0; I < Spatial; ++I)
        GradInPlane[I] += ScaleFactor * (Count * GradPlane[I] - DBeta -
                                         XHatPlane[I] * DGamma);
    }
  }
}

std::vector<Param *> BatchNorm2D::params() { return {&Gamma, &Beta}; }

std::vector<Param *> BatchNorm2D::state() {
  return {&Gamma, &Beta, &RunningMean, &RunningVar};
}

void BatchNorm2D::initParams(Rng &Generator) {
  (void)Generator;
  Gamma.Value.fill(1.0f);
  Beta.Value.zero();
  RunningMean.Value.zero();
  RunningVar.Value.fill(1.0f);
}

//===----------------------------------------------------------------------===//
// ReLU
//===----------------------------------------------------------------------===//

Shape ReLU::outputShape(const std::vector<Shape> &InputShapes) const {
  assert(InputShapes.size() == 1 && "relu expects one input");
  return InputShapes[0];
}

void ReLU::forward(const std::vector<const Tensor *> &Inputs, Tensor &Out,
                   LayerScratch &Scratch, bool Training) const {
  (void)Scratch;
  (void)Training;
  const Tensor &In = *Inputs[0];
  for (size_t I = 0; I < In.size(); ++I)
    Out[I] = In[I] > 0.0f ? In[I] : 0.0f;
}

void ReLU::backward(const std::vector<const Tensor *> &Inputs,
                    const Tensor &Out, const Tensor &GradOut,
                    LayerScratch &Scratch,
                    const std::vector<Tensor *> &GradInputs) {
  (void)Inputs;
  (void)Scratch;
  Tensor *GradIn = GradInputs[0];
  if (!GradIn)
    return;
  for (size_t I = 0; I < Out.size(); ++I)
    if (Out[I] > 0.0f)
      (*GradIn)[I] += GradOut[I];
}

//===----------------------------------------------------------------------===//
// Pool2D
//===----------------------------------------------------------------------===//

Pool2D::Pool2D(Mode PoolMode, int Window, int Stride, int Pad)
    : PoolMode(PoolMode), Window(Window), Stride(Stride), Pad(Pad) {
  assert(Window > 0 && Stride > 0 && Pad >= 0 && "invalid pooling geometry");
}

Shape Pool2D::outputShape(const std::vector<Shape> &InputShapes) const {
  assert(InputShapes.size() == 1 && InputShapes[0].rank() == 4 &&
         "pooling expects one NCHW input");
  const Shape &In = InputShapes[0];
  const int OutH = (In[2] + 2 * Pad - Window) / Stride + 1;
  const int OutW = (In[3] + 2 * Pad - Window) / Stride + 1;
  assert(OutH > 0 && OutW > 0 && "pooling window larger than input");
  return Shape{In[0], In[1], OutH, OutW};
}

void Pool2D::forward(const std::vector<const Tensor *> &Inputs, Tensor &Out,
                     LayerScratch &Scratch, bool Training) const {
  (void)Training;
  const Tensor &In = *Inputs[0];
  const int Batch = In.shape()[0];
  const int Chans = In.shape()[1];
  const int Height = In.shape()[2];
  const int Width = In.shape()[3];
  const int OutH = Out.shape()[2];
  const int OutW = Out.shape()[3];

  // For max pooling remember the winning input offset for backward.
  Tensor *ArgMax = nullptr;
  if (PoolMode == Mode::Max) {
    if (Scratch.Buffers.empty())
      Scratch.Buffers.emplace_back();
    if (Scratch.Buffers[0].shape() != Out.shape())
      Scratch.Buffers[0] = Tensor(Out.shape());
    ArgMax = &Scratch.Buffers[0];
  }

  size_t OutIndex = 0;
  for (int N = 0; N < Batch; ++N) {
    for (int C = 0; C < Chans; ++C) {
      const float *Plane =
          In.data() + (static_cast<size_t>(N) * Chans + C) * Height * Width;
      for (int OH = 0; OH < OutH; ++OH) {
        for (int OW = 0; OW < OutW; ++OW, ++OutIndex) {
          const int H0 = OH * Stride - Pad;
          const int W0 = OW * Stride - Pad;
          if (PoolMode == Mode::Max) {
            float Best = -3.4e38f;
            int BestOffset = -1;
            for (int KH = 0; KH < Window; ++KH) {
              const int IH = H0 + KH;
              if (IH < 0 || IH >= Height)
                continue;
              for (int KW = 0; KW < Window; ++KW) {
                const int IW = W0 + KW;
                if (IW < 0 || IW >= Width)
                  continue;
                const int Offset = IH * Width + IW;
                if (Plane[Offset] > Best) {
                  Best = Plane[Offset];
                  BestOffset = Offset;
                }
              }
            }
            assert(BestOffset >= 0 && "empty pooling window");
            Out[OutIndex] = Best;
            (*ArgMax)[OutIndex] = static_cast<float>(BestOffset);
          } else {
            float Total = 0.0f;
            for (int KH = 0; KH < Window; ++KH) {
              const int IH = H0 + KH;
              if (IH < 0 || IH >= Height)
                continue;
              for (int KW = 0; KW < Window; ++KW) {
                const int IW = W0 + KW;
                if (IW >= 0 && IW < Width)
                  Total += Plane[IH * Width + IW];
              }
            }
            Out[OutIndex] =
                Total / static_cast<float>(Window * Window);
          }
        }
      }
    }
  }
}

void Pool2D::backward(const std::vector<const Tensor *> &Inputs,
                      const Tensor &Out, const Tensor &GradOut,
                      LayerScratch &Scratch,
                      const std::vector<Tensor *> &GradInputs) {
  Tensor *GradIn = GradInputs[0];
  if (!GradIn)
    return;
  const Tensor &In = *Inputs[0];
  const int Batch = In.shape()[0];
  const int Chans = In.shape()[1];
  const int Height = In.shape()[2];
  const int Width = In.shape()[3];
  const int OutH = Out.shape()[2];
  const int OutW = Out.shape()[3];

  size_t OutIndex = 0;
  for (int N = 0; N < Batch; ++N) {
    for (int C = 0; C < Chans; ++C) {
      float *GradPlane =
          GradIn->data() +
          (static_cast<size_t>(N) * Chans + C) * Height * Width;
      for (int OH = 0; OH < OutH; ++OH) {
        for (int OW = 0; OW < OutW; ++OW, ++OutIndex) {
          const float Grad = GradOut[OutIndex];
          if (PoolMode == Mode::Max) {
            const int Offset =
                static_cast<int>(Scratch.Buffers[0][OutIndex]);
            GradPlane[Offset] += Grad;
            continue;
          }
          const float Share = Grad / static_cast<float>(Window * Window);
          const int H0 = OH * Stride - Pad;
          const int W0 = OW * Stride - Pad;
          for (int KH = 0; KH < Window; ++KH) {
            const int IH = H0 + KH;
            if (IH < 0 || IH >= Height)
              continue;
            for (int KW = 0; KW < Window; ++KW) {
              const int IW = W0 + KW;
              if (IW >= 0 && IW < Width)
                GradPlane[IH * Width + IW] += Share;
            }
          }
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// GlobalAvgPool
//===----------------------------------------------------------------------===//

Shape GlobalAvgPool::outputShape(const std::vector<Shape> &InputShapes) const {
  assert(InputShapes.size() == 1 && InputShapes[0].rank() == 4 &&
         "global pooling expects one NCHW input");
  return Shape{InputShapes[0][0], InputShapes[0][1], 1, 1};
}

void GlobalAvgPool::forward(const std::vector<const Tensor *> &Inputs,
                            Tensor &Out, LayerScratch &Scratch,
                            bool Training) const {
  (void)Scratch;
  (void)Training;
  const Tensor &In = *Inputs[0];
  const int Planes = In.shape()[0] * In.shape()[1];
  const int Spatial = In.shape()[2] * In.shape()[3];
  for (int P = 0; P < Planes; ++P) {
    const float *Plane = In.data() + static_cast<size_t>(P) * Spatial;
    float Total = 0.0f;
    for (int I = 0; I < Spatial; ++I)
      Total += Plane[I];
    Out[P] = Total / static_cast<float>(Spatial);
  }
}

void GlobalAvgPool::backward(const std::vector<const Tensor *> &Inputs,
                             const Tensor &Out, const Tensor &GradOut,
                             LayerScratch &Scratch,
                             const std::vector<Tensor *> &GradInputs) {
  (void)Out;
  (void)Scratch;
  Tensor *GradIn = GradInputs[0];
  if (!GradIn)
    return;
  const Tensor &In = *Inputs[0];
  const int Planes = In.shape()[0] * In.shape()[1];
  const int Spatial = In.shape()[2] * In.shape()[3];
  for (int P = 0; P < Planes; ++P) {
    const float Share = GradOut[P] / static_cast<float>(Spatial);
    float *Plane = GradIn->data() + static_cast<size_t>(P) * Spatial;
    for (int I = 0; I < Spatial; ++I)
      Plane[I] += Share;
  }
}

//===----------------------------------------------------------------------===//
// Dense
//===----------------------------------------------------------------------===//

Dense::Dense(int InFeatures, int OutFeatures)
    : InFeatures(InFeatures), OutFeatures(OutFeatures),
      Weight(Shape{OutFeatures, InFeatures}), Bias(Shape{OutFeatures}) {
  assert(InFeatures > 0 && OutFeatures > 0 && "invalid dense extents");
}

Shape Dense::outputShape(const std::vector<Shape> &InputShapes) const {
  assert(InputShapes.size() == 1 && "dense expects one input");
  const Shape &In = InputShapes[0];
  const size_t Features = In.elementCount() / In[0];
  assert(Features == static_cast<size_t>(InFeatures) &&
         "dense input feature mismatch");
  (void)Features;
  return Shape{In[0], OutFeatures};
}

void Dense::forward(const std::vector<const Tensor *> &Inputs, Tensor &Out,
                    LayerScratch &Scratch, bool Training) const {
  (void)Scratch;
  const Tensor &In = *Inputs[0];
  const int Batch = In.shape()[0];
  // Eval reuses cached pre-packed B panels of W^T on the blocked path:
  // same engine, same panels, bit-identical to packing per call — but
  // the pack happens once per process instead of once per request.
  // Training weights mutate every step, so the cache would repack per
  // call there; skip it.
  if (!Training && gemmUsesBlockedEngine(Batch, InFeatures, OutFeatures)) {
    const std::shared_ptr<const PackedPanels> Packed =
        PackedWeightsCache::instance().denseWeights(
            Weight.Value.data(), OutFeatures, InFeatures);
    detail::blockedGemmPacked(
        nullptr, In.data(), static_cast<size_t>(InFeatures), 1,
        Packed.get(), nullptr, 0, 0, Out.data(), Batch, InFeatures,
        OutFeatures, /*Accumulate=*/false, /*RowBias=*/nullptr);
  } else {
    gemmTransposeB(In.data(), Weight.Value.data(), Out.data(), Batch,
                   InFeatures, OutFeatures);
  }
  for (int N = 0; N < Batch; ++N)
    axpy(1.0f, Bias.Value.data(),
         Out.data() + static_cast<size_t>(N) * OutFeatures, OutFeatures);
}

void Dense::backward(const std::vector<const Tensor *> &Inputs,
                     const Tensor &Out, const Tensor &GradOut,
                     LayerScratch &Scratch,
                     const std::vector<Tensor *> &GradInputs) {
  (void)Out;
  (void)Scratch;
  const Tensor &In = *Inputs[0];
  const int Batch = In.shape()[0];
  // dW += dOut^T * X.
  gemmTransposeA(GradOut.data(), In.data(), Weight.Grad.data(), OutFeatures,
                 Batch, InFeatures, /*Accumulate=*/true);
  for (int N = 0; N < Batch; ++N)
    axpy(1.0f, GradOut.data() + static_cast<size_t>(N) * OutFeatures,
         Bias.Grad.data(), OutFeatures);
  Tensor *GradIn = GradInputs[0];
  if (!GradIn)
    return;
  // dX += dOut * W.
  gemm(GradOut.data(), Weight.Value.data(), GradIn->data(), Batch,
       OutFeatures, InFeatures, /*Accumulate=*/true);
}

std::vector<Param *> Dense::params() { return {&Weight, &Bias}; }

void Dense::initParams(Rng &Generator) {
  const float StdDev = std::sqrt(2.0f / static_cast<float>(InFeatures));
  for (size_t I = 0; I < Weight.Value.size(); ++I)
    Weight.Value[I] = StdDev * Generator.nextGaussian();
  Bias.Value.zero();
}

//===----------------------------------------------------------------------===//
// Concat
//===----------------------------------------------------------------------===//

Shape Concat::outputShape(const std::vector<Shape> &InputShapes) const {
  assert(!InputShapes.empty() && "concat needs at least one input");
  const Shape &First = InputShapes[0];
  assert(First.rank() == 4 && "concat expects NCHW inputs");
  int Channels = 0;
  for (const Shape &In : InputShapes) {
    assert(In[0] == First[0] && In[2] == First[2] && In[3] == First[3] &&
           "concat inputs must agree on batch and spatial dims");
    Channels += In[1];
  }
  return Shape{First[0], Channels, First[2], First[3]};
}

void Concat::forward(const std::vector<const Tensor *> &Inputs, Tensor &Out,
                     LayerScratch &Scratch, bool Training) const {
  (void)Scratch;
  (void)Training;
  const int Batch = Out.shape()[0];
  const int Spatial = Out.shape()[2] * Out.shape()[3];
  const size_t OutSample = static_cast<size_t>(Out.shape()[1]) * Spatial;
  for (int N = 0; N < Batch; ++N) {
    size_t Offset = 0;
    for (const Tensor *In : Inputs) {
      const size_t Chunk = static_cast<size_t>(In->shape()[1]) * Spatial;
      std::memcpy(Out.data() + N * OutSample + Offset,
                  In->data() + N * Chunk, sizeof(float) * Chunk);
      Offset += Chunk;
    }
  }
}

void Concat::backward(const std::vector<const Tensor *> &Inputs,
                      const Tensor &Out, const Tensor &GradOut,
                      LayerScratch &Scratch,
                      const std::vector<Tensor *> &GradInputs) {
  (void)Scratch;
  const int Batch = Out.shape()[0];
  const int Spatial = Out.shape()[2] * Out.shape()[3];
  const size_t OutSample = static_cast<size_t>(Out.shape()[1]) * Spatial;
  for (int N = 0; N < Batch; ++N) {
    size_t Offset = 0;
    for (size_t Slot = 0; Slot < Inputs.size(); ++Slot) {
      const size_t Chunk =
          static_cast<size_t>(Inputs[Slot]->shape()[1]) * Spatial;
      if (Tensor *GradIn = GradInputs[Slot])
        axpy(1.0f, GradOut.data() + N * OutSample + Offset,
             GradIn->data() + N * Chunk, Chunk);
      Offset += Chunk;
    }
  }
}

//===----------------------------------------------------------------------===//
// Dropout
//===----------------------------------------------------------------------===//

Dropout::Dropout(float DropRate, uint64_t Seed)
    : DropRate(DropRate), Seed(Seed) {
  assert(DropRate >= 0.0f && DropRate < 1.0f && "drop rate out of [0, 1)");
}

Shape Dropout::outputShape(const std::vector<Shape> &InputShapes) const {
  assert(InputShapes.size() == 1 && "dropout expects one input");
  return InputShapes[0];
}

void Dropout::forward(const std::vector<const Tensor *> &Inputs, Tensor &Out,
                      LayerScratch &Scratch, bool Training) const {
  const Tensor &In = *Inputs[0];
  if (!Training || DropRate == 0.0f) {
    std::memcpy(Out.data(), In.data(), sizeof(float) * In.size());
    return;
  }
  // Scratch buffer 0 stores the mask for backward. The mask stream comes
  // from the context-local generator, lazily seeded from the layer's
  // seed: each ExecContext replays the same deterministic stream the old
  // layer-owned generator produced, without cross-context races.
  if (!Scratch.Generator)
    Scratch.Generator = std::make_unique<Rng>(Seed);
  if (Scratch.Buffers.empty())
    Scratch.Buffers.emplace_back();
  Tensor &Mask = Scratch.Buffers[0];
  if (Mask.shape() != In.shape())
    Mask = Tensor(In.shape());
  const float KeepScale = 1.0f / (1.0f - DropRate);
  for (size_t I = 0; I < In.size(); ++I) {
    const bool Keep = !Scratch.Generator->nextBernoulli(DropRate);
    Mask[I] = Keep ? KeepScale : 0.0f;
    Out[I] = In[I] * Mask[I];
  }
}

void Dropout::backward(const std::vector<const Tensor *> &Inputs,
                       const Tensor &Out, const Tensor &GradOut,
                       LayerScratch &Scratch,
                       const std::vector<Tensor *> &GradInputs) {
  (void)Inputs;
  (void)Out;
  Tensor *GradIn = GradInputs[0];
  if (!GradIn)
    return;
  // The mask is present only when the last forward ran in training mode.
  const bool Masked =
      !Scratch.Buffers.empty() &&
      Scratch.Buffers[0].shape() == GradOut.shape() && DropRate > 0.0f;
  for (size_t I = 0; I < GradOut.size(); ++I)
    (*GradIn)[I] += Masked ? GradOut[I] * Scratch.Buffers[0][I]
                           : GradOut[I];
}

//===----------------------------------------------------------------------===//
// Add
//===----------------------------------------------------------------------===//

Shape Add::outputShape(const std::vector<Shape> &InputShapes) const {
  assert(InputShapes.size() >= 2 && "add needs at least two inputs");
  for (const Shape &In : InputShapes)
    assert(In == InputShapes[0] && "add inputs must have equal shapes");
  return InputShapes[0];
}

void Add::forward(const std::vector<const Tensor *> &Inputs, Tensor &Out,
                  LayerScratch &Scratch, bool Training) const {
  (void)Scratch;
  (void)Training;
  std::memcpy(Out.data(), Inputs[0]->data(), sizeof(float) * Out.size());
  for (size_t Slot = 1; Slot < Inputs.size(); ++Slot)
    axpy(1.0f, Inputs[Slot]->data(), Out.data(), Out.size());
}

void Add::backward(const std::vector<const Tensor *> &Inputs,
                   const Tensor &Out, const Tensor &GradOut,
                   LayerScratch &Scratch,
                   const std::vector<Tensor *> &GradInputs) {
  (void)Inputs;
  (void)Out;
  (void)Scratch;
  for (Tensor *GradIn : GradInputs)
    if (GradIn)
      axpy(1.0f, GradOut.data(), GradIn->data(), GradOut.size());
}
