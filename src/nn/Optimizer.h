//===- nn/Optimizer.h - SGD with momentum ----------------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stochastic gradient descent with classical momentum and decoupled L2
/// weight decay — the training configuration the paper uses (fixed
/// learning rate, weight decay, momentum via TF's MomentumOptimizer).
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_NN_OPTIMIZER_H
#define WOOTZ_NN_OPTIMIZER_H

#include "src/nn/Layer.h"

#include <map>
#include <vector>

namespace wootz {

/// SGD + momentum + weight decay over an explicit parameter set.
class SgdOptimizer {
public:
  /// \p LearningRate and \p WeightDecay mirror the paper's meta data;
  /// \p Momentum defaults to the common 0.9.
  explicit SgdOptimizer(float LearningRate, float Momentum = 0.9f,
                        float WeightDecay = 0.0f)
      : LearningRate(LearningRate), Momentum(Momentum),
        WeightDecay(WeightDecay) {}

  /// Applies one update to every parameter in \p Params using the
  /// gradients currently accumulated in them. Velocity buffers are keyed
  /// by parameter identity, so the same optimizer can drive several
  /// parameter subsets (e.g. per-block pre-training) without mixing state.
  void step(const std::vector<Param *> &Params);

  /// Drops all velocity state (e.g. when switching training phases).
  void resetState() { Velocity.clear(); }

  float learningRate() const { return LearningRate; }
  void setLearningRate(float Rate) { LearningRate = Rate; }

private:
  float LearningRate;
  float Momentum;
  float WeightDecay;
  std::map<Param *, std::vector<float>> Velocity;
};

} // namespace wootz

#endif // WOOTZ_NN_OPTIMIZER_H
