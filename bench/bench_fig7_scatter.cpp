//===- bench/bench_fig7_scatter.cpp - Figure 7 reproduction ----------------------===//
//
// Figure 7 of the paper: final accuracy vs model size of the pruned
// ResNet-50-analogue networks after training, with and without
// composability, on the Flowers102 and Cars analogues; the full model's
// accuracy is the reference line.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace wootz;
using namespace wootz::bench;

static void runDataset(const SyntheticSpec &DataSpec) {
  const Dataset Data = generateSynthetic(DataSpec);
  const ModelSpec Spec = modelFor(StandardModel::ResNetA, Data);
  const TrainMeta Meta = defaultMeta();
  const std::vector<PruneConfig> Subspace = benchSubspace(Spec, Data, 14);

  PipelineOptions Baseline;
  const PipelineResult Base =
      runPipeline(Spec, Data, Subspace, Meta, Baseline, 31);
  PipelineOptions Composability;
  Composability.UseComposability = true;
  const PipelineResult Comp =
      runPipeline(Spec, Data, Subspace, Meta, Composability, 31);

  std::printf("--- %s (full model accuracy %.3f, %zu weights) ---\n",
              Data.Name.c_str(), Base.FullAccuracy, Base.FullWeightCount);
  Table Scatter({"model size %", "default acc", "block-trained acc"});
  int BlockWins = 0;
  for (size_t I = 0; I < Base.Evaluations.size(); ++I) {
    Scatter.addRow(
        {formatDouble(100.0 * Base.Evaluations[I].SizeFraction, 1),
         formatDouble(Base.Evaluations[I].FinalAccuracy, 3),
         formatDouble(Comp.Evaluations[I].FinalAccuracy, 3)});
    BlockWins += Comp.Evaluations[I].FinalAccuracy >=
                 Base.Evaluations[I].FinalAccuracy;
  }
  std::printf("%s", Scatter.render().c_str());
  std::printf("block-trained >= default on %d/%zu configurations\n\n",
              BlockWins, Base.Evaluations.size());
}

int main() {
  std::printf("=== Figure 7: accuracy vs model size after training "
              "(mini-resnet-a) ===\n\n");
  const std::vector<SyntheticSpec> Specs = standardDatasetSpecs();
  runDataset(Specs[0]); // flowers102.
  runDataset(Specs[2]); // cars.
  std::printf("paper reference (Figure 7 shape): the block-trained "
              "points lie above the default points\nacross the whole "
              "size range, approaching the full model's accuracy.\n");
  return 0;
}
