//===- bench/bench_ablation_importance.cpp - importance-criterion ablation -------===//
//
// Ablation: how much does the filter-importance criterion matter for the
// composability pipeline? The paper fixes l1 norms (Li et al.) and cites
// the alternatives as orthogonal; this bench runs the same subspace under
// all four criteria and reports the init+/final+ medians and the
// exploration outcome for each. The expected result (and the paper's
// implicit claim): the criterion shifts results far less than
// composability itself does.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace wootz;
using namespace wootz::bench;

int main() {
  std::printf("=== Ablation: filter-importance criteria (design choice "
              "in DESIGN.md section 6) ===\n\n");
  const TrainMeta Meta = defaultMeta();
  const Dataset Data = generateSynthetic(standardDatasetSpecs()[1]);
  const ModelSpec Spec = modelFor(StandardModel::ResNetA, Data);
  const std::vector<PruneConfig> Subspace = benchSubspace(Spec, Data, 10);
  std::printf("model %s on %s, %zu configurations\n\n", Spec.Name.c_str(),
              Data.Name.c_str(), Subspace.size());

  Table Out({"criterion", "median init", "median init+", "median final+",
             "configs to winner", "time (s)"});
  for (ImportanceCriterion Criterion :
       {ImportanceCriterion::L1Norm, ImportanceCriterion::L2Norm,
        ImportanceCriterion::Taylor, ImportanceCriterion::Apoz}) {
    PipelineOptions Baseline;
    Baseline.Criterion = Criterion;
    const PipelineResult Base =
        runPipeline(Spec, Data, Subspace, Meta, Baseline, 71);
    PipelineOptions Composability = Baseline;
    Composability.UseComposability = true;
    const PipelineResult Comp =
        runPipeline(Spec, Data, Subspace, Meta, Composability, 71);

    std::vector<double> Init, InitPlus, FinalPlus;
    for (size_t I = 0; I < Base.Evaluations.size(); ++I) {
      Init.push_back(Base.Evaluations[I].InitAccuracy);
      InitPlus.push_back(Comp.Evaluations[I].InitAccuracy);
      FinalPlus.push_back(Comp.Evaluations[I].FinalAccuracy);
    }
    const PruningObjective Objective =
        smallestMeetingAccuracy(Comp.FullAccuracy - 0.04);
    const ExplorationSummary Summary =
        summarizeExploration(Comp, Objective, 1);
    Out.addRow({importanceCriterionName(Criterion),
                formatDouble(median(Init), 3),
                formatDouble(median(InitPlus), 3),
                formatDouble(median(FinalPlus), 3),
                Summary.WinnerIndex < 0
                    ? std::string("-")
                    : std::to_string(Summary.ConfigsEvaluated),
                formatDouble(Summary.Seconds, 2)});
  }
  std::printf("%s", Out.render().c_str());
  std::printf("\nexpected shape: init+ clearly above init under every "
              "criterion; differences between criteria are second-order "
              "next to the composability gain.\n");
  return 0;
}
