//===- bench/bench_kernels.cpp - Compute-kernel micro benchmark ------------------===//
//
// Tracks the performance of the compute substrate everything else sits
// on: blocked vs reference GEMM GFLOP/s across sizes (single- and
// multi-threaded) and batch-parallel Conv2D forward/backward scaling
// over kernel worker counts. Every row also lands in BENCH_kernels.json
// so the perf trajectory is machine-readable from this PR onward.
//
//===----------------------------------------------------------------------===//

#include "src/nn/Layers.h"
#include "src/support/File.h"
#include "src/support/Json.h"
#include "src/support/Rng.h"
#include "src/support/Stopwatch.h"
#include "src/support/StringUtils.h"
#include "src/support/Table.h"
#include "src/tensor/Kernels.h"
#include "src/tensor/Ops.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

using namespace wootz;

namespace {

/// Median seconds per call: repeats \p Body until ~0.12 s have
/// accumulated (after one warmup call), three times, and takes the
/// median of the per-call means.
double secondsPerCall(const std::function<void()> &Body) {
  Body(); // Warmup: scratch allocation, pool spin-up, page faults.
  std::vector<double> Means;
  for (int Round = 0; Round < 3; ++Round) {
    Stopwatch Timer;
    int Reps = 0;
    do {
      Body();
      ++Reps;
    } while (Timer.seconds() < 0.12);
    Means.push_back(Timer.seconds() / Reps);
  }
  std::sort(Means.begin(), Means.end());
  return Means[1];
}

void fillRandom(float *Data, size_t Count, Rng &Generator) {
  for (size_t I = 0; I < Count; ++I)
    Data[I] = Generator.nextGaussian();
}

double gflops(double Flops, double Seconds) {
  return Seconds > 0.0 ? Flops / Seconds / 1e9 : 0.0;
}

} // namespace

int main() {
  std::printf("=== Compute kernels: blocked GEMM and batch-parallel "
              "Conv2D ===\n\n");
  std::string JsonRows;
  auto pushRow = [&JsonRows](const JsonObject &Row) {
    JsonRows += std::string(JsonRows.empty() ? "" : ",\n  ") + Row.str();
  };

  const unsigned MtWorkers = 4;
  Rng Generator(0xbe7c);

  //===--------------------------------------------------------------------===//
  // GEMM: reference vs blocked, single- and multi-threaded.
  //===--------------------------------------------------------------------===//
  Table GemmTable({"size", "ref GF/s", "blocked GF/s", "blocked x4 GF/s",
                   "speedup 1T", "scaling 1->4"});
  for (int Size : {32, 64, 128, 256, 512}) {
    const size_t Count = static_cast<size_t>(Size) * Size;
    Tensor A(Shape{Size, Size}), B(Shape{Size, Size}), C(Shape{Size, Size});
    fillRandom(A.data(), Count, Generator);
    fillRandom(B.data(), Count, Generator);
    const double Flops = 2.0 * Size * Size * Size;

    const double RefSec = secondsPerCall(
        [&] { gemmReference(A.data(), B.data(), C.data(), Size, Size, Size); });
    setKernelWorkers(1);
    const double BlockedSec = secondsPerCall(
        [&] { gemm(A.data(), B.data(), C.data(), Size, Size, Size); });
    setKernelWorkers(MtWorkers);
    const double BlockedMtSec = secondsPerCall(
        [&] { gemm(A.data(), B.data(), C.data(), Size, Size, Size); });
    setKernelWorkers(1);

    const double RefGf = gflops(Flops, RefSec);
    const double BlockedGf = gflops(Flops, BlockedSec);
    const double BlockedMtGf = gflops(Flops, BlockedMtSec);
    GemmTable.addRow({std::to_string(Size), formatDouble(RefGf, 2),
                      formatDouble(BlockedGf, 2),
                      formatDouble(BlockedMtGf, 2),
                      formatDouble(BlockedGf / RefGf, 2) + "x",
                      formatDouble(BlockedMtGf / BlockedGf, 2) + "x"});
    JsonObject Row;
    Row.field("kind", "gemm")
        .field("m", Size)
        .field("k", Size)
        .field("n", Size)
        .field("gflops_reference", RefGf, 3)
        .field("gflops_blocked", BlockedGf, 3)
        .field("gflops_blocked_mt", BlockedMtGf, 3)
        .field("mt_workers", static_cast<int>(MtWorkers))
        .field("speedup_blocked_vs_reference", BlockedGf / RefGf, 3);
    pushRow(Row);
  }
  std::printf("--- GEMM (square, single precision) ---\n%s\n",
              GemmTable.render().c_str());

  //===--------------------------------------------------------------------===//
  // Conv2D forward/backward: batch-parallel scaling over workers.
  //===--------------------------------------------------------------------===//
  const int Batch = 8;
  ConvGeometry Geometry{16, 32, 3, 1, 1};
  const int Height = 16, Width = 16;
  Conv2D Conv(Geometry);
  Conv.initParams(Generator);

  Tensor In(Shape{Batch, Geometry.InChannels, Height, Width});
  fillRandom(In.data(), In.size(), Generator);
  const Shape OutShape = Conv.outputShape({In.shape()});
  Tensor Out(OutShape), GradOut(OutShape), GradIn(In.shape());
  fillRandom(GradOut.data(), GradOut.size(), Generator);
  LayerScratch Scratch;
  const std::vector<const Tensor *> Inputs{&In};
  const std::vector<Tensor *> GradInputs{&GradIn};

  const int OutH = Geometry.outExtent(Height);
  const int OutW = Geometry.outExtent(Width);
  const double ColRows = static_cast<double>(Geometry.InChannels) *
                         Geometry.KernelSize * Geometry.KernelSize;
  const double FwdFlops = 2.0 * Batch * Geometry.OutChannels * ColRows *
                          OutH * OutW;
  const double BwdFlops = 2.0 * FwdFlops; // dW and dX GEMMs.

  Table ConvTable({"workers", "fwd ms", "fwd GF/s", "bwd ms", "bwd GF/s"});
  double FwdOneWorker = 0.0, FwdFourWorkers = 0.0;
  for (unsigned Workers : {1u, 2u, 4u}) {
    setKernelWorkers(Workers);
    const double FwdSec = secondsPerCall(
        [&] { Conv.forward(Inputs, Out, Scratch, /*Training=*/true); });
    const double BwdSec = secondsPerCall([&] {
      for (Param *P : Conv.params())
        P->Grad.zero();
      GradIn.zero();
      Conv.backward(Inputs, Out, GradOut, Scratch, GradInputs);
    });
    if (Workers == 1)
      FwdOneWorker = FwdSec;
    if (Workers == 4)
      FwdFourWorkers = FwdSec;
    ConvTable.addRow({std::to_string(Workers),
                      formatDouble(FwdSec * 1e3, 3),
                      formatDouble(gflops(FwdFlops, FwdSec), 2),
                      formatDouble(BwdSec * 1e3, 3),
                      formatDouble(gflops(BwdFlops, BwdSec), 2)});
    JsonObject Row;
    Row.field("kind", "conv2d")
        .field("batch", Batch)
        .field("in_channels", Geometry.InChannels)
        .field("out_channels", Geometry.OutChannels)
        .field("kernel", Geometry.KernelSize)
        .field("height", Height)
        .field("width", Width)
        .field("workers", static_cast<int>(Workers))
        .field("forward_seconds", FwdSec, 6)
        .field("forward_gflops", gflops(FwdFlops, FwdSec), 3)
        .field("backward_seconds", BwdSec, 6)
        .field("backward_gflops", gflops(BwdFlops, BwdSec), 3);
    pushRow(Row);
  }
  setKernelWorkers(1);
  std::printf("--- Conv2D %dx%d k%d, %d->%d channels, batch %d ---\n%s\n",
              Height, Width, Geometry.KernelSize, Geometry.InChannels,
              Geometry.OutChannels, Batch, ConvTable.render().c_str());
  const double Scaling =
      FwdFourWorkers > 0.0 ? FwdOneWorker / FwdFourWorkers : 0.0;
  std::printf("conv forward scaling 1->4 workers: %.2fx (%.0f%% parallel "
              "efficiency; expect ~1x on a single-core host)\n\n",
              Scaling, 100.0 * Scaling / 4.0);
  JsonObject Summary;
  Summary.field("kind", "conv2d_scaling")
      .field("workers_from", 1)
      .field("workers_to", 4)
      .field("forward_speedup", Scaling, 3);
  pushRow(Summary);

  const std::string JsonPath = "BENCH_kernels.json";
  Error WriteErr = writeFile(JsonPath, "[\n  " + JsonRows + "\n]\n");
  if (WriteErr)
    std::printf("warning: could not write %s: %s\n", JsonPath.c_str(),
                WriteErr.message().c_str());
  else
    std::printf("wrote %s\n", JsonPath.c_str());
  return 0;
}
