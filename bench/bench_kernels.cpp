//===- bench/bench_kernels.cpp - Compute-kernel micro benchmark ------------------===//
//
// Tracks the performance of the compute substrate everything else sits
// on: blocked vs reference GEMM GFLOP/s across sizes (single- and
// multi-threaded) and batch-parallel Conv2D forward/backward scaling
// over kernel worker counts. Every row also lands in BENCH_kernels.json
// so the perf trajectory is machine-readable from this PR onward.
//
//===----------------------------------------------------------------------===//

#include "src/nn/Layers.h"
#include "src/support/File.h"
#include "src/support/Json.h"
#include "src/support/Rng.h"
#include "src/support/Stopwatch.h"
#include "src/support/StringUtils.h"
#include "src/support/Table.h"
#include "src/tensor/Kernels.h"
#include "src/tensor/Ops.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

using namespace wootz;

namespace {

/// Median seconds per call: repeats \p Body until ~0.12 s have
/// accumulated (after one warmup call), three times, and takes the
/// median of the per-call means.
double secondsPerCall(const std::function<void()> &Body) {
  Body(); // Warmup: scratch allocation, pool spin-up, page faults.
  std::vector<double> Means;
  for (int Round = 0; Round < 3; ++Round) {
    Stopwatch Timer;
    int Reps = 0;
    do {
      Body();
      ++Reps;
    } while (Timer.seconds() < 0.12);
    Means.push_back(Timer.seconds() / Reps);
  }
  std::sort(Means.begin(), Means.end());
  return Means[1];
}

void fillRandom(float *Data, size_t Count, Rng &Generator) {
  for (size_t I = 0; I < Count; ++I)
    Data[I] = Generator.nextGaussian();
}

double gflops(double Flops, double Seconds) {
  return Seconds > 0.0 ? Flops / Seconds / 1e9 : 0.0;
}

} // namespace

int main() {
  std::printf("=== Compute kernels: blocked GEMM and batch-parallel "
              "Conv2D ===\n\n");
  std::string JsonRows;
  auto pushRow = [&JsonRows](const JsonObject &Row) {
    JsonRows += std::string(JsonRows.empty() ? "" : ",\n  ") + Row.str();
  };

  const unsigned MtWorkers = 4;
  Rng Generator(0xbe7c);

  //===--------------------------------------------------------------------===//
  // GEMM: reference vs blocked, single- and multi-threaded.
  //===--------------------------------------------------------------------===//
  Table GemmTable({"size", "ref GF/s", "blocked GF/s", "blocked x4 GF/s",
                   "speedup 1T", "scaling 1->4"});
  for (int Size : {32, 64, 128, 256, 512}) {
    const size_t Count = static_cast<size_t>(Size) * Size;
    Tensor A(Shape{Size, Size}), B(Shape{Size, Size}), C(Shape{Size, Size});
    fillRandom(A.data(), Count, Generator);
    fillRandom(B.data(), Count, Generator);
    const double Flops = 2.0 * Size * Size * Size;

    const double RefSec = secondsPerCall(
        [&] { gemmReference(A.data(), B.data(), C.data(), Size, Size, Size); });
    setKernelWorkers(1);
    const double BlockedSec = secondsPerCall(
        [&] { gemm(A.data(), B.data(), C.data(), Size, Size, Size); });
    setKernelWorkers(MtWorkers);
    const double BlockedMtSec = secondsPerCall(
        [&] { gemm(A.data(), B.data(), C.data(), Size, Size, Size); });
    setKernelWorkers(1);

    const double RefGf = gflops(Flops, RefSec);
    const double BlockedGf = gflops(Flops, BlockedSec);
    const double BlockedMtGf = gflops(Flops, BlockedMtSec);
    GemmTable.addRow({std::to_string(Size), formatDouble(RefGf, 2),
                      formatDouble(BlockedGf, 2),
                      formatDouble(BlockedMtGf, 2),
                      formatDouble(BlockedGf / RefGf, 2) + "x",
                      formatDouble(BlockedMtGf / BlockedGf, 2) + "x"});
    JsonObject Row;
    Row.field("kind", "gemm")
        .field("m", Size)
        .field("k", Size)
        .field("n", Size)
        .field("gflops_reference", RefGf, 3)
        .field("gflops_blocked", BlockedGf, 3)
        .field("gflops_blocked_mt", BlockedMtGf, 3)
        .field("mt_workers", static_cast<int>(MtWorkers))
        .field("speedup_blocked_vs_reference", BlockedGf / RefGf, 3);
    pushRow(Row);
  }
  std::printf("--- GEMM (square, single precision) ---\n%s\n",
              GemmTable.render().c_str());

  //===--------------------------------------------------------------------===//
  // Conv2D forward/backward: batch-parallel scaling over workers.
  //===--------------------------------------------------------------------===//
  const int Batch = 8;
  ConvGeometry Geometry{16, 32, 3, 1, 1};
  const int Height = 16, Width = 16;
  Conv2D Conv(Geometry);
  Conv.initParams(Generator);

  Tensor In(Shape{Batch, Geometry.InChannels, Height, Width});
  fillRandom(In.data(), In.size(), Generator);
  const Shape OutShape = Conv.outputShape({In.shape()});
  Tensor Out(OutShape), GradOut(OutShape), GradIn(In.shape());
  fillRandom(GradOut.data(), GradOut.size(), Generator);
  LayerScratch Scratch;
  const std::vector<const Tensor *> Inputs{&In};
  const std::vector<Tensor *> GradInputs{&GradIn};

  const int OutH = Geometry.outExtent(Height);
  const int OutW = Geometry.outExtent(Width);
  const double ColRows = static_cast<double>(Geometry.InChannels) *
                         Geometry.KernelSize * Geometry.KernelSize;
  const double FwdFlops = 2.0 * Batch * Geometry.OutChannels * ColRows *
                          OutH * OutW;
  const double BwdFlops = 2.0 * FwdFlops; // dW and dX GEMMs.

  Table ConvTable({"workers", "fwd ms", "fwd GF/s", "bwd ms", "bwd GF/s"});
  double FwdOneWorker = 0.0, FwdFourWorkers = 0.0;
  for (unsigned Workers : {1u, 2u, 4u}) {
    setKernelWorkers(Workers);
    const double FwdSec = secondsPerCall(
        [&] { Conv.forward(Inputs, Out, Scratch, /*Training=*/true); });
    const double BwdSec = secondsPerCall([&] {
      for (Param *P : Conv.params())
        P->Grad.zero();
      GradIn.zero();
      Conv.backward(Inputs, Out, GradOut, Scratch, GradInputs);
    });
    if (Workers == 1)
      FwdOneWorker = FwdSec;
    if (Workers == 4)
      FwdFourWorkers = FwdSec;
    ConvTable.addRow({std::to_string(Workers),
                      formatDouble(FwdSec * 1e3, 3),
                      formatDouble(gflops(FwdFlops, FwdSec), 2),
                      formatDouble(BwdSec * 1e3, 3),
                      formatDouble(gflops(BwdFlops, BwdSec), 2)});
    JsonObject Row;
    Row.field("kind", "conv2d")
        .field("batch", Batch)
        .field("in_channels", Geometry.InChannels)
        .field("out_channels", Geometry.OutChannels)
        .field("kernel", Geometry.KernelSize)
        .field("height", Height)
        .field("width", Width)
        .field("workers", static_cast<int>(Workers))
        .field("forward_seconds", FwdSec, 6)
        .field("forward_gflops", gflops(FwdFlops, FwdSec), 3)
        .field("backward_seconds", BwdSec, 6)
        .field("backward_gflops", gflops(BwdFlops, BwdSec), 3);
    pushRow(Row);
  }
  setKernelWorkers(1);
  std::printf("--- Conv2D %dx%d k%d, %d->%d channels, batch %d ---\n%s\n",
              Height, Width, Geometry.KernelSize, Geometry.InChannels,
              Geometry.OutChannels, Batch, ConvTable.render().c_str());
  const double Scaling =
      FwdFourWorkers > 0.0 ? FwdOneWorker / FwdFourWorkers : 0.0;
  std::printf("conv forward scaling 1->4 workers: %.2fx (%.0f%% parallel "
              "efficiency; expect ~1x on a single-core host)\n\n",
              Scaling, 100.0 * Scaling / 4.0);
  JsonObject Summary;
  Summary.field("kind", "conv2d_scaling")
      .field("workers_from", 1)
      .field("workers_to", 4)
      .field("forward_speedup", Scaling, 3);
  pushRow(Summary);

  //===--------------------------------------------------------------------===//
  // Eval path: fused im2col+pack with the adaptive split, over workers.
  //===--------------------------------------------------------------------===//
  const int ColCols = OutH * OutW;
  const int M = Geometry.OutChannels;
  const int K = static_cast<int>(ColRows);
  const float *WeightPtr = Conv.weight().Value.data();
  const float *BiasPtr = Conv.bias() ? Conv.bias()->Value.data() : nullptr;

  // Baseline: the pre-fusion eval path — materialize each sample's
  // im2col matrix, then run the same blocked GEMM over it.
  setKernelWorkers(1);
  std::vector<float> Columns(static_cast<size_t>(K) * ColCols);
  const size_t InPlane =
      static_cast<size_t>(Geometry.InChannels) * Height * Width;
  const size_t OutPlane = static_cast<size_t>(M) * ColCols;
  const double MaterializedSec = secondsPerCall([&] {
    for (int S = 0; S < Batch; ++S) {
      im2col(In.data() + S * InPlane, Geometry.InChannels, Height, Width,
             Geometry, Columns.data());
      detail::blockedGemm(WeightPtr, static_cast<size_t>(K), 1,
                          Columns.data(), static_cast<size_t>(ColCols), 1,
                          Out.data() + S * OutPlane, M, K, ColCols,
                          /*Accumulate=*/false, BiasPtr);
    }
  });

  Table EvalTable({"workers", "fwd ms", "fwd GF/s", "split", "tasks"});
  double EvalOneWorker = 0.0, EvalFourWorkers = 0.0;
  for (unsigned Workers : {1u, 2u, 4u}) {
    setKernelWorkers(Workers);
    const ConvSplit Split = chooseConvSplit(Batch, M, K, ColCols);
    const double EvalSec = secondsPerCall([&] {
      convForwardFused(In.data(), Batch, Height, Width, Geometry, nullptr,
                       WeightPtr, BiasPtr, /*FuseReLU=*/false, Out.data());
    });
    if (Workers == 1)
      EvalOneWorker = EvalSec;
    if (Workers == 4)
      EvalFourWorkers = EvalSec;
    EvalTable.addRow({std::to_string(Workers),
                      formatDouble(EvalSec * 1e3, 3),
                      formatDouble(gflops(FwdFlops, EvalSec), 2),
                      convSplitKindName(Split.Kind),
                      std::to_string(Split.Tasks)});
    JsonObject Row;
    Row.field("kind", "conv2d_eval_fused")
        .field("batch", Batch)
        .field("m", M)
        .field("k", K)
        .field("n", ColCols)
        .field("workers", static_cast<int>(Workers))
        .field("split", convSplitKindName(Split.Kind))
        .field("column_chunk", Split.ColumnChunk)
        .field("tasks", static_cast<int>(Split.Tasks))
        .field("forward_seconds", EvalSec, 6)
        .field("forward_gflops", gflops(FwdFlops, EvalSec), 3);
    pushRow(Row);
  }
  setKernelWorkers(1);
  std::printf("--- Conv2D eval forward, fused im2col+pack ---\n%s\n",
              EvalTable.render().c_str());
  const double FusedSpeedup =
      EvalOneWorker > 0.0 ? MaterializedSec / EvalOneWorker : 0.0;
  const double EvalScaling =
      EvalFourWorkers > 0.0 ? EvalOneWorker / EvalFourWorkers : 0.0;
  std::printf("fused vs materialized im2col (1 worker): %.2fx\n"
              "eval forward scaling 1->4 workers: %.2fx (adaptive split; "
              "expect ~1x on a single-core host)\n\n",
              FusedSpeedup, EvalScaling);
  JsonObject EvalSummary;
  EvalSummary.field("kind", "conv2d_eval_scaling")
      .field("workers_from", 1)
      .field("workers_to", 4)
      .field("forward_speedup", EvalScaling, 3)
      .field("fused_vs_materialized_1t", FusedSpeedup, 3)
      .field("materialized_seconds", MaterializedSec, 6);
  pushRow(EvalSummary);

  //===--------------------------------------------------------------------===//
  // The measured cost model and the split crossover it induces.
  //===--------------------------------------------------------------------===//
  setKernelWorkers(MtWorkers);
  const KernelCostModel Model = kernelCostModel();
  std::printf("--- Measured cost model (%u workers) ---\n"
              "dispatch %.1f us, %.3f GF/s single-thread, measured pool "
              "speedup %.2fx\n\n",
              Model.Workers, Model.DispatchSeconds * 1e6,
              Model.SecondsPerFlop > 0.0
                  ? 1.0 / (Model.SecondsPerFlop * 1e9)
                  : 0.0,
              Model.ParallelSpeedup);
  JsonObject ModelRow;
  ModelRow.field("kind", "kernel_cost_model")
      .field("workers", static_cast<int>(Model.Workers))
      .field("dispatch_seconds", Model.DispatchSeconds, 9)
      .field("seconds_per_flop", Model.SecondsPerFlop, 15)
      .field("parallel_speedup", Model.ParallelSpeedup, 3);
  pushRow(ModelRow);

  // Crossover table: which split the heuristic picks as the conv
  // problem grows, at the multi-threaded worker count. Geometry fixed
  // at 3x3 16->32 channels; batch and spatial extent sweep.
  Table SplitTable({"batch", "spatial", "gemm MxKxN", "split", "chunk",
                    "tasks"});
  for (int SweepBatch : {1, 2, 8}) {
    for (int Spatial : {4, 8, 16, 32, 64}) {
      const ConvGeometry SG{16, 32, 3, 1, 1};
      const int SweepK = SG.InChannels * SG.KernelSize * SG.KernelSize;
      const int SweepCols = SG.outExtent(Spatial) * SG.outExtent(Spatial);
      const ConvSplit Split =
          chooseConvSplit(SweepBatch, SG.OutChannels, SweepK, SweepCols);
      SplitTable.addRow(
          {std::to_string(SweepBatch), std::to_string(Spatial),
           std::to_string(SG.OutChannels) + "x" + std::to_string(SweepK) +
               "x" + std::to_string(SweepCols),
           convSplitKindName(Split.Kind), std::to_string(Split.ColumnChunk),
           std::to_string(Split.Tasks)});
      JsonObject Row;
      Row.field("kind", "conv_split")
          .field("workers", static_cast<int>(MtWorkers))
          .field("batch", SweepBatch)
          .field("spatial", Spatial)
          .field("m", SG.OutChannels)
          .field("k", SweepK)
          .field("n", SweepCols)
          .field("split", convSplitKindName(Split.Kind))
          .field("column_chunk", Split.ColumnChunk)
          .field("tasks", static_cast<int>(Split.Tasks));
      pushRow(Row);
    }
  }
  setKernelWorkers(1);
  std::printf("--- Split crossover (%u workers) ---\n%s\n", MtWorkers,
              SplitTable.render().c_str());

  const std::string JsonPath = "BENCH_kernels.json";
  Error WriteErr = writeFile(JsonPath, "[\n  " + JsonRows + "\n]\n");
  if (WriteErr)
    std::printf("warning: could not write %s: %s\n", JsonPath.c_str(),
                WriteErr.message().c_str());
  else
    std::printf("wrote %s\n", JsonPath.c_str());
  return 0;
}
