//===- bench/bench_fig6_curves.cpp - Figure 6 reproduction -----------------------===//
//
// Figure 6 of the paper: accuracy-vs-steps curves of the default and the
// block-trained network on the CUB200 analogue, for the configuration
// with 70% of the least important filters pruned at every convolution
// module, on the ResNet and Inception analogues.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace wootz;
using namespace wootz::bench;

static void runModel(StandardModel Which, const Dataset &Data) {
  const ModelSpec Spec = modelFor(Which, Data);
  TrainMeta Meta = defaultMeta();
  Meta.FinetuneSteps = 120;
  Meta.EvalEvery = 10;        // Dense curve for the figure.
  Meta.EarlyStopPatience = 0; // Show the full curves, as the paper does.

  // One configuration: every module pruned at 70%.
  const std::vector<PruneConfig> Subspace{
      PruneConfig(Spec.moduleCount(), 0.7f)};

  PipelineOptions Baseline;
  const PipelineResult Base = runPipeline(Spec, Data, Subspace, Meta,
                                          Baseline, 21, /*Curves=*/true);
  PipelineOptions Composability;
  Composability.UseComposability = true;
  const PipelineResult Comp = runPipeline(Spec, Data, Subspace, Meta,
                                          Composability, 21,
                                          /*Curves=*/true);

  std::printf("--- %s on %s (70%% pruned everywhere; full model %.3f) "
              "---\n",
              standardModelName(Which), Data.Name.c_str(),
              Base.FullAccuracy);
  Table Curve({"step", "default", "block-trained"});
  const std::vector<AccuracyPoint> &B = Base.Evaluations[0].Curve;
  const std::vector<AccuracyPoint> &C = Comp.Evaluations[0].Curve;
  for (size_t I = 0; I < B.size() && I < C.size(); ++I)
    Curve.addRow({std::to_string(B[I].Step),
                  formatDouble(B[I].Accuracy, 3),
                  formatDouble(C[I].Accuracy, 3)});
  std::printf("%s", Curve.render().c_str());
  std::printf("init %.3f vs init+ %.3f; final %.3f vs final+ %.3f; "
              "steps-to-best %d vs %d\n\n",
              Base.Evaluations[0].InitAccuracy,
              Comp.Evaluations[0].InitAccuracy,
              Base.Evaluations[0].FinalAccuracy,
              Comp.Evaluations[0].FinalAccuracy,
              Base.Evaluations[0].StepsToBest,
              Comp.Evaluations[0].StepsToBest);
}

int main() {
  std::printf("=== Figure 6: accuracy curves of default vs block-trained "
              "networks (CUB200 analogue) ===\n\n");
  const Dataset Data = generateSynthetic(standardDatasetSpecs()[1]);
  runModel(StandardModel::ResNetA, Data);
  runModel(StandardModel::InceptionB, Data);
  std::printf("paper reference (Figure 6 shape): default starts near "
              "zero, block-trained starts at 0.40-0.53\nand stays above "
              "the default curve throughout, converging higher and "
              "sooner.\n");
  return 0;
}
