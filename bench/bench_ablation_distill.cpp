//===- bench/bench_ablation_distill.cpp - distillation ablation ------------------===//
//
// Extension ablation: the paper pre-trains *pieces* of networks against
// the teacher's activations and cites whole-network knowledge
// distillation (Ba & Caruana; Hinton et al.) as the inspiration (§6.1,
// §8). This bench asks whether adding the whole-network KD term during
// global fine-tuning helps on top of (or instead of) block pre-training:
// four variants of the same subspace run — {baseline, +KD, blocks,
// blocks+KD} — and report median init/final accuracies.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace wootz;
using namespace wootz::bench;

int main() {
  std::printf("=== Ablation: whole-network distillation vs block "
              "pre-training ===\n\n");
  const TrainMeta Meta = defaultMeta();
  const Dataset Data = generateSynthetic(standardDatasetSpecs()[1]);
  const ModelSpec Spec = modelFor(StandardModel::ResNetA, Data);
  const std::vector<PruneConfig> Subspace = benchSubspace(Spec, Data, 10);
  std::printf("model %s on %s, %zu configurations\n\n", Spec.Name.c_str(),
              Data.Name.c_str(), Subspace.size());

  struct Variant {
    const char *Name;
    bool Blocks;
    float Alpha;
  };
  const std::vector<Variant> Variants{
      {"baseline", false, 0.0f},
      {"baseline + KD", false, 0.5f},
      {"block-trained", true, 0.0f},
      {"block-trained + KD", true, 0.5f},
  };

  Table Out({"variant", "median init", "median final", "mean final",
             "eval time (s)"});
  for (const Variant &V : Variants) {
    PipelineOptions Options;
    Options.UseComposability = V.Blocks;
    Options.DistillAlpha = V.Alpha;
    const PipelineResult Run =
        runPipeline(Spec, Data, Subspace, Meta, Options, 91);
    std::vector<double> Init, Final;
    double MeanFinal = 0.0;
    for (const EvaluatedConfig &E : Run.Evaluations) {
      Init.push_back(E.InitAccuracy);
      Final.push_back(E.FinalAccuracy);
      MeanFinal += E.FinalAccuracy;
    }
    MeanFinal /= Run.Evaluations.size();
    Out.addRow({V.Name, formatDouble(median(Init), 3),
                formatDouble(median(Final), 3), formatDouble(MeanFinal, 3),
                formatDouble(Run.EvaluationSeconds, 2)});
  }
  std::printf("%s", Out.render().c_str());
  std::printf("\nexpected shape: block pre-training moves init (and "
              "final) far more than the KD term does;\nKD is a mild "
              "additive regularizer on top — pieces-of-networks reuse, "
              "not whole-network\ndistillation, is what makes pruning "
              "exploration fast.\n");
  return 0;
}
