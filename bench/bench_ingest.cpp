//===- bench/bench_ingest.cpp - model-ingestion path costs -----------------------===//
//
// Times the stages a POST /v1/models upload walks for each standard
// model: Prototxt parse, graph build, weight export + WOOTZCK2
// serialize, base64 encode/decode, and the full ModelStore::upload
// (validate -> build -> import -> persist -> register). The interesting
// shape: parse and base64 are noise, the graph build dominates, and the
// strict weight import costs one extra build's worth of copying — so
// upload latency is roughly 2x a cold model build, bounded by the
// store's byte caps rather than by attacker-chosen input.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "src/nn/Serialize.h"
#include "src/serve/ModelStore.h"
#include "src/support/Stopwatch.h"

#include <cstdio>
#include <filesystem>
#include <string>

using namespace wootz;
using namespace wootz::serve;

namespace {

double millis(Stopwatch &Timer) { return Timer.seconds() * 1000.0; }

} // namespace

int main() {
  const std::string Dir = "./wootz_bench_ingest";
  std::filesystem::remove_all(Dir);

  std::printf("%-12s %9s %9s %9s %9s %11s %11s\n", "model", "parse_ms",
              "build_ms", "bundle_kb", "b64_ms", "upload_ms",
              "upload_w_ms");

  for (StandardModel Model : standardModels()) {
    const std::string Text = standardModelPrototxt(Model, 10);

    Stopwatch ParseTimer;
    Result<ModelSpec> Spec = parseModelSpec(Text);
    const double ParseMs = millis(ParseTimer);
    if (!Spec) {
      std::fprintf(stderr, "parse %s: %s\n", standardModelName(Model),
                   Spec.message().c_str());
      return 1;
    }

    Stopwatch BuildTimer;
    Result<BuiltNetwork> Built = buildFullNetwork(*Spec, 7);
    const double BuildMs = millis(BuildTimer);
    if (!Built) {
      std::fprintf(stderr, "build %s: %s\n", standardModelName(Model),
                   Built.message().c_str());
      return 1;
    }

    const std::string Bundle = serializeTensors(
        exportWeights(Built->Network, FullNetworkPrefix));

    Stopwatch Base64Timer;
    Result<std::string> Decoded = base64Decode(base64Encode(Bundle));
    const double Base64Ms = millis(Base64Timer);
    if (!Decoded || *Decoded != Bundle) {
      std::fprintf(stderr, "base64 round trip failed\n");
      return 1;
    }

    // Full upload path, without and with a weight bundle.
    double UploadMs = 0.0, UploadWeightsMs = 0.0;
    for (int WithWeights = 0; WithWeights < 2; ++WithWeights) {
      RunLog Log;
      ModelRegistry Registry(BatcherOptions(), &Log, nullptr);
      ModelStoreOptions Options;
      Options.Dir = Dir;
      ModelStore Store(Options, &Registry, &Log);
      std::map<std::string, std::string> Body = {{"model", Text},
                                                 {"id", "bench"}};
      if (WithWeights)
        Body["weights_b64"] = base64Encode(Bundle);
      Stopwatch UploadTimer;
      const UploadOutcome Out = Store.upload(Body);
      (WithWeights ? UploadWeightsMs : UploadMs) = millis(UploadTimer);
      if (Out.Status != 201) {
        std::fprintf(stderr, "upload %s: %s\n", standardModelName(Model),
                     Out.Error.c_str());
        return 1;
      }
      Registry.stopAll();
      std::filesystem::remove_all(Dir);
    }

    std::printf("%-12s %9.2f %9.2f %9zu %9.2f %11.2f %11.2f\n",
                standardModelName(Model), ParseMs, BuildMs,
                Bundle.size() / 1024, Base64Ms, UploadMs,
                UploadWeightsMs);
  }
  return 0;
}
