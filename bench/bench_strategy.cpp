//===- bench/bench_strategy.cpp - exploration strategies head to head ------------===//
//
// Fixed-subspace sweep vs greedy sensitivity vs the adaptive explorer
// (explore/strategy/) on mini models, all chasing the same accuracy/size
// objective: how many configurations does each evaluate — and how much
// wall-clock does it burn — before a satisfying network is found? The
// fixed sweep must walk the enumerated subspace from the smallest model
// up; the adaptive explorer starts from the unpruned network and prunes
// toward the objective, so it should reach it in fewer evaluations.
// Rows land in BENCH_strategy.json for tracking scripts.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "src/explore/strategy/FixedSubspace.h"
#include "src/support/File.h"
#include "src/support/Json.h"
#include "src/train/ModelZoo.h"

using namespace wootz;
using namespace wootz::bench;

namespace {

struct StrategyOutcome {
  int EvalsRun = 0;         ///< Non-cancelled evaluations performed.
  int EvalsToObjective = 0; ///< Evaluations until the first satisfier.
  bool Met = false;
  double Seconds = 0.0;
  double WinnerAccuracy = 0.0;
  double WinnerSizeFraction = 0.0;
  StrategyRunResult Search;
};

StrategyOutcome runOne(const ModelSpec &Spec, const Dataset &Data,
                       const std::vector<PruneConfig> &Subspace,
                       const TrainMeta &Meta,
                       const PruningObjective &Objective,
                       StrategyKind Kind, PipelineSchedule Schedule,
                       int Workers) {
  StrategyKnobs Knobs;
  Knobs.Rates = standardRates();
  Knobs.MaxRounds = 10;
  Result<std::unique_ptr<ExplorationStrategy>> Strategy =
      makeStrategy(Kind, Spec, Subspace, Objective, Knobs);
  if (!Strategy) {
    std::fprintf(stderr, "bench strategy error: %s\n",
                 Strategy.message().c_str());
    std::exit(1);
  }

  PipelineOptions Options;
  Options.UseComposability = true;
  Options.UseIdentifier = false;
  Options.Schedule = Schedule;
  Options.Workers = Workers;
  Options.CacheDir = cacheDir();
  if (Schedule == PipelineSchedule::Overlap)
    Options.CancelObjective = &Objective;

  Stopwatch Watch;
  Rng Generator(41);
  Result<StrategyRunResult> Search = runStrategyExploration(
      Spec, Data, **Strategy, Meta, Options, Objective, Generator);
  if (!Search) {
    std::fprintf(stderr, "bench exploration error (%s): %s\n",
                 strategyKindName(Kind), Search.message().c_str());
    std::exit(1);
  }

  StrategyOutcome Out;
  Out.Seconds = Watch.seconds();
  Out.Search = Search.take();
  for (const EvaluatedConfig &E : Out.Search.Run.Evaluations) {
    if (E.Cancelled)
      continue;
    ++Out.EvalsRun;
    if (!Out.Met) {
      ++Out.EvalsToObjective;
      if (Objective.satisfied(E.WeightCount, E.FinalAccuracy)) {
        Out.Met = true;
        Out.WinnerAccuracy = E.FinalAccuracy;
        Out.WinnerSizeFraction = E.SizeFraction;
      }
    }
  }
  return Out;
}

} // namespace

int main() {
  std::printf("=== Exploration strategies: configs evaluated to reach the "
              "objective ===\n\n");

  const TrainMeta Meta = defaultMeta();
  std::string JsonRows;
  auto pushRow = [&JsonRows](const JsonObject &Row) {
    if (!JsonRows.empty())
      JsonRows += ",\n  ";
    JsonRows += Row.str();
  };

  Table Out({"model", "strategy", "rounds", "evals run", "evals to obj",
             "met", "winner size", "winner acc", "seconds"});
  for (StandardModel Which : {StandardModel::ResNetA,
                              StandardModel::InceptionA}) {
    // The CUB200 analogue — the hardest of the standard datasets — so
    // pruning actually costs accuracy and the objective discriminates.
    SyntheticSpec DataSpec = standardDatasetSpecs()[1];
    const Dataset Data = generateSynthetic(DataSpec);
    const ModelSpec Spec = modelFor(Which, Data);

    // The objective needs the teacher's accuracy; the probe shares the
    // bench-wide full-model cache with the exploration runs below.
    const MultiplexingModel Model(Spec);
    Rng Probe(33);
    Result<FullModel> Full =
        prepareFullModel(Model, Data, Meta, cacheDir(), Probe);
    if (!Full) {
      std::fprintf(stderr, "bench teacher error: %s\n",
                   Full.message().c_str());
      return 1;
    }
    const size_t FullWeights =
        modelWeightCount(Spec, unprunedConfig(Spec));

    // Hold 92% of the teacher's accuracy in at most 80% of its weights —
    // tight enough that the smallest subspace entries fail the accuracy
    // floor, so the ascending fixed sweep pays for them first.
    PruningObjective Objective;
    Objective.Minimize = true;
    Objective.Optimize = Metric::ModelSize;
    Objective.Constraints = {
        {Metric::Accuracy, CompareOp::GE, 0.92 * Full->Accuracy},
        {Metric::ModelSize, CompareOp::LE, 0.80 * FullWeights}};

    const std::vector<PruneConfig> Subspace =
        benchSubspace(Spec, Data, /*Count=*/12);

    int FixedEvals = 0, AdaptiveEvals = 0;
    for (StrategyKind Kind : {StrategyKind::Fixed, StrategyKind::Greedy,
                              StrategyKind::Adaptive}) {
      // Overlap + the cancellation objective: each run stops paying for
      // evaluations as soon as the objective is provably met (greedy
      // rounds are unordered, so only fixed/adaptive cancel within one).
      const StrategyOutcome Run =
          runOne(Spec, Data, Subspace, Meta, Objective, Kind,
                 PipelineSchedule::Overlap, /*Workers=*/2);
      if (Kind == StrategyKind::Fixed)
        FixedEvals = Run.EvalsToObjective;
      if (Kind == StrategyKind::Adaptive)
        AdaptiveEvals = Run.EvalsToObjective;
      Out.addRow({standardModelName(Which), strategyKindName(Kind),
                  std::to_string(Run.Search.Rounds),
                  std::to_string(Run.EvalsRun),
                  std::to_string(Run.EvalsToObjective),
                  Run.Met ? "yes" : "no",
                  formatDouble(100.0 * Run.WinnerSizeFraction, 1) + "%",
                  formatDouble(Run.WinnerAccuracy, 3),
                  formatDouble(Run.Seconds, 2)});
      JsonObject Row;
      Row.field("model", standardModelName(Which))
          .field("strategy", strategyKindName(Kind))
          .field("rounds", Run.Search.Rounds)
          .field("proposals", Run.Search.Proposals)
          .field("evals_run", Run.EvalsRun)
          .field("evals_to_objective", Run.EvalsToObjective)
          .field("met", Run.Met ? "true" : "false")
          .field("winner_size_fraction", Run.WinnerSizeFraction, 4)
          .field("winner_accuracy", Run.WinnerAccuracy, 4)
          .field("wall_seconds", Run.Seconds, 3)
          .field("blocks_reused", Run.Search.BlocksReused);
      pushRow(Row);
    }
    Out.addSeparator();
    if (AdaptiveEvals >= FixedEvals)
      std::printf("WARNING: %s: adaptive needed %d evals vs fixed %d\n",
                  standardModelName(Which), AdaptiveEvals, FixedEvals);

    // Determinism spot check: the adaptive run under EvalOnly is
    // bit-identical for any Workers value (per-proposal seeds are drawn
    // up front; the schedule only changes who computes what when).
    const StrategyOutcome Serial =
        runOne(Spec, Data, Subspace, Meta, Objective,
               StrategyKind::Adaptive, PipelineSchedule::EvalOnly, 1);
    const StrategyOutcome Wide =
        runOne(Spec, Data, Subspace, Meta, Objective,
               StrategyKind::Adaptive, PipelineSchedule::EvalOnly, 4);
    bool Deterministic =
        Serial.Search.Run.Evaluations.size() ==
        Wide.Search.Run.Evaluations.size();
    for (size_t I = 0; Deterministic &&
                       I < Serial.Search.Run.Evaluations.size();
         ++I) {
      const EvaluatedConfig &A = Serial.Search.Run.Evaluations[I];
      const EvaluatedConfig &B = Wide.Search.Run.Evaluations[I];
      Deterministic = A.Config == B.Config &&
                      A.FinalAccuracy == B.FinalAccuracy &&
                      A.InitAccuracy == B.InitAccuracy;
    }
    std::printf("%s: adaptive EvalOnly workers 1 vs 4 bit-identical: %s\n",
                standardModelName(Which), Deterministic ? "yes" : "NO");
    JsonObject Det;
    Det.field("model", standardModelName(Which))
        .field("strategy", "adaptive")
        .field("check", "evalonly_workers_invariance")
        .field("bit_identical", Deterministic ? "true" : "false");
    pushRow(Det);
  }

  std::printf("\n%s", Out.render().c_str());
  std::printf("\nexpected shape: the fixed sweep walks the subspace from "
              "the smallest model up\nand pays one evaluation per "
              "too-small configuration before reaching a satisfier;\nthe "
              "adaptive explorer starts at the unpruned network and "
              "prunes toward the\nobjective, reaching it in fewer "
              "evaluations on at least one model.\n");

  const std::string JsonPath = "BENCH_strategy.json";
  Error WriteErr = writeFile(JsonPath, "[\n  " + JsonRows + "\n]\n");
  if (WriteErr)
    std::printf("warning: could not write %s: %s\n", JsonPath.c_str(),
                WriteErr.message().c_str());
  else
    std::printf("wrote %s\n", JsonPath.c_str());
  return 0;
}
