//===- bench/bench_table4_subspace.cpp - Table 4 reproduction --------------------===//
//
// Table 4 of the paper: speedups of composability-based pruning as the
// promising-subspace size grows. Pre-training cost amortizes over more
// configurations, so the speedup rises with the subspace size.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace wootz;
using namespace wootz::bench;

int main() {
  std::printf("=== Table 4: speedups vs subspace size ===\n");
  const std::vector<int> Sizes{4, 12, 32};
  std::printf("(subspace sizes 4/12/32; the paper sweeps 4..256)\n\n");

  const TrainMeta Meta = defaultMeta();
  struct Setting {
    StandardModel Model;
    int DatasetIndex;
    double Alpha;
  };
  const std::vector<Setting> Settings{
      // The paper pairs Flowers102 with alpha 0%; at our scale the
      // flowers analogue saturates (full accuracy 1.0), so the cars
      // analogue stands in for the "easy dataset, tight threshold" cell.
      {StandardModel::ResNetA, 2, 0.0},    // cars, alpha 0%.
      {StandardModel::InceptionB, 2, 0.0}, // cars, alpha 0%.
      {StandardModel::ResNetA, 1, 0.03},   // cub, alpha 3%.
      {StandardModel::InceptionB, 1, 0.03},
  };

  for (const Setting &S : Settings) {
    const Dataset Data =
        generateSynthetic(standardDatasetSpecs()[S.DatasetIndex]);
    const ModelSpec Spec = modelFor(S.Model, Data);
    std::printf("--- %s on %s, alpha %.0f%% ---\n",
                standardModelName(S.Model), Data.Name.c_str(),
                100.0 * S.Alpha);
    Table Out({"subspace", "base time(s)", "comp time(s)", "speedup",
               "blocks", "overhead"});
    // Nested subspaces (size-4 is a subset of size-12 is a subset of
    // size-32) so the sweep varies only the amount of exploration, not
    // which configurations exist — the paper's independent samples need
    // 500-config scale to smooth that sampling noise out.
    const std::vector<PruneConfig> FullSubspace =
        benchSubspace(Spec, Data, Sizes.back());
    for (int Size : Sizes) {
      const std::vector<PruneConfig> Subspace(
          FullSubspace.begin(),
          FullSubspace.begin() +
              std::min<size_t>(Size, FullSubspace.size()));
      PipelineOptions Baseline;
      const PipelineResult Base =
          runPipeline(Spec, Data, Subspace, Meta, Baseline, 51);
      PipelineOptions Composability;
      Composability.UseComposability = true;
      const PipelineResult Comp =
          runPipeline(Spec, Data, Subspace, Meta, Composability, 51);
      const PruningObjective Objective =
          smallestMeetingAccuracy(Comp.FullAccuracy - S.Alpha);
      const ExplorationSummary B = summarizeExploration(Base, Objective, 1);
      const ExplorationSummary C = summarizeExploration(Comp, Objective, 1);
      Out.addRow({std::to_string(Subspace.size()),
                  formatDouble(B.Seconds, 2), formatDouble(C.Seconds, 2),
                  formatDouble(C.Seconds > 0 ? B.Seconds / C.Seconds : 0,
                               1) +
                      "x",
                  std::to_string(Comp.Blocks.size()),
                  formatDouble(100.0 * C.OverheadFraction, 0) + "%"});
    }
    std::printf("%s\n", Out.render().c_str());
  }
  std::printf("paper reference (Table 4 shape): speedups grow with the "
              "subspace size (1.7x at 4 configs\nup to 108x at 256) as "
              "pre-training amortizes; even 4-config subspaces usually "
              "profit.\n");
  return 0;
}
