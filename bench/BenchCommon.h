//===- bench/BenchCommon.h - Shared bench harness helpers -----------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table/figure bench binaries. Every bench is
/// a plain executable that prints the corresponding table/figure rows;
/// absolute numbers differ from the paper (CPU-miniature scale), but the
/// qualitative shape must match (see EXPERIMENTS.md).
///
/// Trained full models are cached under ./wootz_cache so that rerunning
/// the suite (or individual benches) skips the expensive preparation.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_BENCH_BENCHCOMMON_H
#define WOOTZ_BENCH_BENCHCOMMON_H

#include "src/support/Stopwatch.h"
#include "src/wootz/wootz.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace wootz {
namespace bench {

/// The shared training configuration of the bench suite.
inline TrainMeta defaultMeta() {
  TrainMeta Meta;
  Meta.FullModelSteps = 1200;
  Meta.FullModelLearningRate = 0.02f;
  // Halve the rate every 400 steps during full-model preparation: the
  // teachers converge to nearly seed-independent accuracies, which keeps
  // the Table 2-5 shapes stable across runs. Fine-tuning budgets are
  // far below 400 steps, so the decay never fires there.
  Meta.LrDecayEvery = 400;
  Meta.LrDecayFactor = 0.5f;
  Meta.PretrainSteps = 80;
  Meta.PretrainLearningRate = 0.08f;
  Meta.FinetuneSteps = 60;
  Meta.FinetuneLearningRate = 0.01f;
  Meta.BatchSize = 8;
  Meta.EvalEvery = 10;
  Meta.EarlyStopPatience = 2;
  return Meta;
}

/// Full-model cache directory (override with WOOTZ_CACHE_DIR).
inline std::string cacheDir() {
  if (const char *FromEnv = std::getenv("WOOTZ_CACHE_DIR"))
    return FromEnv;
  return "wootz_cache";
}

inline double median(std::vector<double> Values) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  const size_t Mid = Values.size() / 2;
  if (Values.size() % 2 == 1)
    return Values[Mid];
  return 0.5 * (Values[Mid - 1] + Values[Mid]);
}

/// Runs one pipeline; aborts the bench on error (bench inputs are fixed
/// and trusted).
inline PipelineResult runPipeline(const ModelSpec &Spec,
                                  const Dataset &Data,
                                  const std::vector<PruneConfig> &Subspace,
                                  const TrainMeta &Meta,
                                  PipelineOptions Options, uint64_t Seed,
                                  bool KeepCurves = false) {
  Options.CacheDir = cacheDir();
  Options.KeepCurves = KeepCurves;
  Rng Generator(Seed);
  Result<PipelineResult> Run =
      runPruningPipeline(Spec, Data, Subspace, Meta, Options, Generator);
  if (!Run) {
    std::fprintf(stderr, "bench pipeline error: %s\n",
                 Run.message().c_str());
    std::exit(1);
  }
  return Run.take();
}

/// Builds the standard model with the dataset's class count.
inline ModelSpec modelFor(StandardModel Which, const Dataset &Data) {
  Result<ModelSpec> Spec = makeStandardModel(Which, Data.Classes);
  if (!Spec) {
    std::fprintf(stderr, "bench model error: %s\n", Spec.message().c_str());
    std::exit(1);
  }
  return Spec.take();
}

/// The per-dataset subspaces used across benches: deterministic in the
/// dataset name so every bench sees the same configurations.
inline std::vector<PruneConfig> benchSubspace(const ModelSpec &Spec,
                                              const Dataset &Data,
                                              int Count) {
  uint64_t Seed = 0x5eed;
  for (char C : Data.Name)
    Seed = Seed * 131 + static_cast<unsigned char>(C);
  Rng Generator(Seed);
  return sampleSubspace(Spec.moduleCount(), Count, standardRates(),
                        Generator);
}

} // namespace bench
} // namespace wootz

#endif // WOOTZ_BENCH_BENCHCOMMON_H
