//===- bench/bench_cache_reuse.cpp - cross-run block cache speedup ---------------===//
//
// The cross-run payoff of the tuning-block cache (train/BlockCache.h):
// the composability pipeline runs twice against one cache directory —
// cold (every block pre-trained and published) and warm (every block
// fetched from disk). The warm run must pre-train zero blocks, take a
// fraction of the cold wall time, and reproduce the cold evaluations.
// Rows land in BENCH_cache.json for tracking scripts.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "src/support/File.h"
#include "src/support/Json.h"

#include <filesystem>

using namespace wootz;
using namespace wootz::bench;

int main() {
  std::printf("=== Cross-run block cache: cold vs warm pipeline ===\n\n");

  const TrainMeta Meta = defaultMeta();
  const std::string BlockCacheDir = cacheDir() + "/blocks_bench";
  // The bench measures the cold path honestly: start from nothing.
  std::filesystem::remove_all(BlockCacheDir);

  std::string JsonRows;
  auto pushRow = [&JsonRows](const JsonObject &Row) {
    if (!JsonRows.empty())
      JsonRows += ",\n  ";
    JsonRows += Row.str();
  };

  Table Out({"model", "run", "pretrained", "cache hits", "pretrain s",
             "total s", "speedup"});
  for (StandardModel Which : standardModels()) {
    SyntheticSpec DataSpec = standardDatasetSpecs()[0];
    const Dataset Data = generateSynthetic(DataSpec);
    const ModelSpec Spec = modelFor(Which, Data);
    const std::vector<PruneConfig> Subspace =
        benchSubspace(Spec, Data, /*Count=*/6);

    PipelineOptions Options;
    Options.UseComposability = true;
    Options.BlockCacheConfig.Directory = BlockCacheDir;

    Stopwatch ColdWatch;
    const PipelineResult Cold =
        runPipeline(Spec, Data, Subspace, Meta, Options, 11);
    const double ColdSeconds = ColdWatch.seconds();
    Stopwatch WarmWatch;
    const PipelineResult Warm =
        runPipeline(Spec, Data, Subspace, Meta, Options, 11);
    const double WarmSeconds = WarmWatch.seconds();

    const double Speedup =
        WarmSeconds > 0.0 ? ColdSeconds / WarmSeconds : 0.0;
    Out.addRow({standardModelName(Which), "cold",
                std::to_string(Cold.Pretrain.BlockCount),
                std::to_string(Cold.Telemetry.counter("cache.hit")),
                formatDouble(Cold.Pretrain.Seconds, 2),
                formatDouble(ColdSeconds, 2), ""});
    Out.addRow({standardModelName(Which), "warm",
                std::to_string(Warm.Pretrain.BlockCount),
                std::to_string(Warm.Telemetry.counter("cache.hit")),
                formatDouble(Warm.Pretrain.Seconds, 2),
                formatDouble(WarmSeconds, 2),
                formatDouble(Speedup, 2) + "x"});
    Out.addSeparator();

    if (Warm.Pretrain.BlockCount != 0)
      std::printf("WARNING: %s warm run still pre-trained %d blocks\n",
                  standardModelName(Which), Warm.Pretrain.BlockCount);

    JsonObject Row;
    Row.field("model", standardModelName(Which))
        .field("blocks", Cold.Pretrain.BlockCount)
        .field("cold_pretrain_seconds", Cold.Pretrain.Seconds, 3)
        .field("cold_total_seconds", ColdSeconds, 3)
        .field("warm_pretrained_blocks", Warm.Pretrain.BlockCount)
        .field("warm_cache_hits", Warm.Telemetry.counter("cache.hit"))
        .field("warm_total_seconds", WarmSeconds, 3)
        .field("speedup", Speedup, 3);
    pushRow(Row);
  }

  std::printf("%s", Out.render().c_str());
  std::printf("\nexpected shape: warm runs pre-train 0 blocks (100%% cache "
              "hits) and drop the\npre-training term from the wall time "
              "entirely; total speedup grows with the\npre-training share "
              "of the cold run.\n");

  const std::string JsonPath = "BENCH_cache.json";
  Error WriteErr = writeFile(JsonPath, "[\n  " + JsonRows + "\n]\n");
  if (WriteErr)
    std::printf("warning: could not write %s: %s\n", JsonPath.c_str(),
                WriteErr.message().c_str());
  else
    std::printf("wrote %s\n", JsonPath.c_str());
  return 0;
}
