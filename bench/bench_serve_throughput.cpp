//===- bench/bench_serve_throughput.cpp - serving-layer throughput ---------------===//
//
// Load-tests the wootz::serve daemon end to end over real sockets: one
// tiny pruning job produces a servable winner, then closed-loop clients
// hammer POST /v1/models/:id/predict while we sweep the client count,
// the micro-batcher's MaxBatch cap, and the execution engine (Graph
// interpreter vs frozen static plan). Rows (req/s, p50/p99 latency per
// engine) land in BENCH_serve.json for tracking scripts; the expected
// shape is that
// an unbatched server's latency grows linearly with concurrency while
// the batched one amortizes the forward pass once batches fill (paying
// a bounded companion wait when traffic is too thin to batch).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "src/support/File.h"
#include "src/support/Json.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace wootz;
using namespace wootz::serve;

namespace {

/// One blocking HTTP/1.1 exchange against 127.0.0.1:Port (the serve
/// layer answers one request per connection, like its tests).
bool exchange(int Port, const std::string &Raw, std::string &Response) {
  const int Socket = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Socket < 0)
    return false;
  sockaddr_in Address{};
  Address.sin_family = AF_INET;
  Address.sin_port = htons(static_cast<uint16_t>(Port));
  Address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Socket, reinterpret_cast<sockaddr *>(&Address),
                sizeof(Address)) != 0) {
    ::close(Socket);
    return false;
  }
  size_t Sent = 0;
  while (Sent < Raw.size()) {
    const ssize_t N = ::send(Socket, Raw.data() + Sent, Raw.size() - Sent, 0);
    if (N <= 0) {
      ::close(Socket);
      return false;
    }
    Sent += static_cast<size_t>(N);
  }
  Response.clear();
  char Buffer[4096];
  for (;;) {
    const ssize_t N = ::recv(Socket, Buffer, sizeof(Buffer), 0);
    if (N <= 0)
      break;
    Response.append(Buffer, static_cast<size_t>(N));
  }
  ::close(Socket);
  return !Response.empty();
}

std::string makeRequest(const std::string &Method, const std::string &Target,
                        const std::string &Body) {
  std::string Raw = Method + " " + Target + " HTTP/1.1\r\n";
  Raw += "Host: bench\r\nConnection: close\r\n";
  if (!Body.empty())
    Raw += "Content-Length: " + std::to_string(Body.size()) + "\r\n";
  Raw += "\r\n" + Body;
  return Raw;
}

double percentile(std::vector<double> Values, double Fraction) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  const size_t At = std::min(
      Values.size() - 1,
      static_cast<size_t>(Fraction * static_cast<double>(Values.size())));
  return Values[At];
}

/// The tiny job the bench trains once per server: two configurations,
/// per-module blocks (the sequitur identifier finds nothing reusable in
/// a two-config subspace), miniature step counts.
std::map<std::string, std::string> tinyJobBody(const ModelSpec &Spec,
                                               const std::string &Model) {
  PruneConfig A(Spec.moduleCount(), 0.0f);
  A[0] = 0.5f;
  PruneConfig B(Spec.moduleCount(), 0.0f);
  B[0] = 0.3f;
  TrainMeta Meta;
  Meta.FullModelSteps = 60;
  Meta.PretrainSteps = 12;
  Meta.FinetuneSteps = 8;
  Meta.EvalEvery = 8;
  Meta.BatchSize = 8;
  return {{"model", Model},
          {"subspace", printSubspaceSpec({A, B})},
          {"meta", printTrainMeta(Meta)},
          {"objective", "min ModelSize\nconstraint Accuracy >= 0.0\n"},
          {"dataset_scale", "0.1"},
          {"identifier", "false"},
          {"workers", "2"}};
}

struct LoadResult {
  double Seconds = 0.0;
  double P50 = 0.0;
  double P99 = 0.0;
  int Ok = 0;
  int Errors = 0;

  double requestsPerSecond() const {
    return Seconds > 0.0 ? Ok / Seconds : 0.0;
  }
};

/// Closed-loop load: each client thread sends RequestsPerClient requests
/// back to back and records per-request wall latency.
LoadResult runLoad(int Port, const std::string &Raw, int Clients,
                   int RequestsPerClient) {
  std::vector<std::vector<double>> Latencies(Clients);
  std::atomic<int> Ok{0};
  std::atomic<int> Errors{0};
  Stopwatch Wall;
  std::vector<std::thread> Threads;
  for (int Client = 0; Client < Clients; ++Client)
    Threads.emplace_back([&, Client] {
      Latencies[Client].reserve(RequestsPerClient);
      for (int I = 0; I < RequestsPerClient; ++I) {
        Stopwatch One;
        std::string Response;
        const bool Sent = exchange(Port, Raw, Response);
        if (Sent && Response.find(" 200 ") != std::string::npos) {
          Latencies[Client].push_back(One.seconds());
          ++Ok;
        } else {
          ++Errors;
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();

  LoadResult Out;
  Out.Seconds = Wall.seconds();
  Out.Ok = Ok.load();
  Out.Errors = Errors.load();
  std::vector<double> All;
  for (const std::vector<double> &PerClient : Latencies)
    All.insert(All.end(), PerClient.begin(), PerClient.end());
  Out.P50 = percentile(All, 0.50);
  Out.P99 = percentile(All, 0.99);
  return Out;
}

} // namespace

int main() {
  std::printf("=== wootz::serve throughput: clients x batch cap ===\n\n");

  const std::string ModelText =
      standardModelPrototxt(StandardModel::ResNetA, 4);
  Result<ModelSpec> Spec = parseModelSpec(ModelText);
  if (!Spec) {
    std::fprintf(stderr, "bench model error: %s\n", Spec.message().c_str());
    return 1;
  }
  std::string Input;
  const int InputCount =
      Spec->InputChannels * Spec->InputHeight * Spec->InputWidth;
  for (int I = 0; I < InputCount; ++I)
    Input += (I ? " " : "") + formatDouble(0.01 * (I % 11), 3);
  JsonObject PredictBody;
  PredictBody.field("input", Input);
  const std::string PredictJson = PredictBody.str();

  std::string JsonRows;
  auto pushRow = [&JsonRows](const JsonObject &Row) {
    if (!JsonRows.empty())
      JsonRows += ",\n  ";
    JsonRows += Row.str();
  };

  Table Out({"engine", "batch cap", "clients", "requests", "req/s",
             "p50 ms", "p99 ms", "errors"});
  const int RequestsPerClient = 50;
  for (const bool UsePlans : {false, true})
  for (int MaxBatch : {1, 8}) {
    // One server per (engine, batch cap) cell: both the micro-batcher
    // and the plan freeze happen at construction/registration. State
    // lives under the shared bench cache dir so a rerun reuses the
    // trained teacher.
    const char *Engine = UsePlans ? "plan" : "interpreter";
    ServerOptions Options;
    Options.Http.Workers = 8;
    Options.Batching.MaxBatch = MaxBatch;
    Options.Batching.UsePlans = UsePlans;
    Options.Jobs.CacheDir = wootz::bench::cacheDir() + "/serve_bench";
    WootzServer Server(Options);
    if (Error Started = Server.start()) {
      std::fprintf(stderr, "bench server error: %s\n",
                   Started.message().c_str());
      return 1;
    }
    const int Port = Server.port();

    JsonObject SubmitBody;
    for (const auto &[Key, Value] : tinyJobBody(*Spec, ModelText))
      SubmitBody.field(Key, Value);
    std::string Accepted;
    if (!exchange(Port, makeRequest("POST", "/v1/jobs", SubmitBody.str()),
                  Accepted) ||
        Accepted.find(" 202 ") == std::string::npos) {
      std::fprintf(stderr, "bench job submit failed:\n%s\n",
                   Accepted.c_str());
      return 1;
    }
    const size_t IdAt = Accepted.find("\"id\":\"");
    const std::string JobId = Accepted.substr(
        IdAt + 6, Accepted.find('"', IdAt + 6) - (IdAt + 6));
    Server.jobs().drain(); // Waits for the job; new jobs get 503, but
                           // the predict path stays open.
    if (Server.models().count() == 0) {
      std::fprintf(stderr, "bench job produced no servable model\n");
      return 1;
    }

    const std::string PredictRaw = makeRequest(
        "POST", "/v1/models/" + JobId + "/predict", PredictJson);
    for (int Clients : {1, 2, 4, 8}) {
      const LoadResult Load =
          runLoad(Port, PredictRaw, Clients, RequestsPerClient);
      Out.addRow({Engine, std::to_string(MaxBatch),
               std::to_string(Clients), std::to_string(Load.Ok),
               formatDouble(Load.requestsPerSecond(), 1),
               formatDouble(Load.P50 * 1e3, 3),
               formatDouble(Load.P99 * 1e3, 3),
               std::to_string(Load.Errors)});
      JsonObject Row;
      Row.field("path", "predict")
          .field("engine", Engine)
          .field("max_batch", MaxBatch)
          .field("clients", Clients)
          .field("requests", Load.Ok)
          .field("errors", Load.Errors)
          .field("requests_per_second", Load.requestsPerSecond(), 1)
          .field("p50_seconds", Load.P50, 6)
          .field("p99_seconds", Load.P99, 6);
      pushRow(Row);
    }
    Server.drain();
  }

  std::printf("%s", Out.render().c_str());
  std::printf("\nexpected shape: with the cap at 1 every request pays its "
              "own forward pass, so\nlatency climbs roughly linearly with "
              "the client count; with the cap at 8 a lone\nclient pays the "
              "bounded companion wait (MaxWaitMicros), but once enough "
              "clients\narrive batches fill early and req/s scales past "
              "the unbatched ceiling.\n");

  const std::string JsonPath = "BENCH_serve.json";
  Error WriteErr = writeFile(JsonPath, "[\n  " + JsonRows + "\n]\n");
  if (WriteErr)
    std::printf("warning: could not write %s: %s\n", JsonPath.c_str(),
                WriteErr.message().c_str());
  else
    std::printf("wrote %s\n", JsonPath.c_str());
  return 0;
}
