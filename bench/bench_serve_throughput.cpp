//===- bench/bench_serve_throughput.cpp - serving-layer throughput ---------------===//
//
// Load-tests the wootz::serve daemon end to end over real sockets: one
// tiny pruning job produces a servable winner, then closed-loop clients
// hammer POST /v1/models/:id/predict while we sweep the client count,
// the micro-batcher's MaxBatch cap, and the execution engine (Graph
// interpreter vs frozen static plan). Rows (req/s, p50/p99 latency per
// engine) land in BENCH_serve.json for tracking scripts; the expected
// shape is that
// an unbatched server's latency grows linearly with concurrency while
// the batched one amortizes the forward pass once batches fill (paying
// a bounded companion wait when traffic is too thin to batch).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "src/support/File.h"
#include "src/support/Json.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace wootz;
using namespace wootz::serve;

namespace {

/// One blocking HTTP/1.1 exchange against 127.0.0.1:Port (the serve
/// layer answers one request per connection, like its tests).
bool exchange(int Port, const std::string &Raw, std::string &Response) {
  const int Socket = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Socket < 0)
    return false;
  sockaddr_in Address{};
  Address.sin_family = AF_INET;
  Address.sin_port = htons(static_cast<uint16_t>(Port));
  Address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Socket, reinterpret_cast<sockaddr *>(&Address),
                sizeof(Address)) != 0) {
    ::close(Socket);
    return false;
  }
  size_t Sent = 0;
  while (Sent < Raw.size()) {
    const ssize_t N = ::send(Socket, Raw.data() + Sent, Raw.size() - Sent, 0);
    if (N <= 0) {
      ::close(Socket);
      return false;
    }
    Sent += static_cast<size_t>(N);
  }
  Response.clear();
  char Buffer[4096];
  for (;;) {
    const ssize_t N = ::recv(Socket, Buffer, sizeof(Buffer), 0);
    if (N <= 0)
      break;
    Response.append(Buffer, static_cast<size_t>(N));
  }
  ::close(Socket);
  return !Response.empty();
}

std::string makeRequest(const std::string &Method, const std::string &Target,
                        const std::string &Body) {
  std::string Raw = Method + " " + Target + " HTTP/1.1\r\n";
  Raw += "Host: bench\r\nConnection: close\r\n";
  if (!Body.empty())
    Raw += "Content-Length: " + std::to_string(Body.size()) + "\r\n";
  Raw += "\r\n" + Body;
  return Raw;
}

double percentile(std::vector<double> Values, double Fraction) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  const size_t At = std::min(
      Values.size() - 1,
      static_cast<size_t>(Fraction * static_cast<double>(Values.size())));
  return Values[At];
}

/// The tiny job the bench trains once per server: two configurations,
/// per-module blocks (the sequitur identifier finds nothing reusable in
/// a two-config subspace), miniature step counts.
std::map<std::string, std::string> tinyJobBody(const ModelSpec &Spec,
                                               const std::string &Model) {
  PruneConfig A(Spec.moduleCount(), 0.0f);
  A[0] = 0.5f;
  PruneConfig B(Spec.moduleCount(), 0.0f);
  B[0] = 0.3f;
  TrainMeta Meta;
  Meta.FullModelSteps = 60;
  Meta.PretrainSteps = 12;
  Meta.FinetuneSteps = 8;
  Meta.EvalEvery = 8;
  Meta.BatchSize = 8;
  return {{"model", Model},
          {"subspace", printSubspaceSpec({A, B})},
          {"meta", printTrainMeta(Meta)},
          {"objective", "min ModelSize\nconstraint Accuracy >= 0.0\n"},
          {"dataset_scale", "0.1"},
          {"identifier", "false"},
          {"workers", "2"}};
}

struct LoadResult {
  double Seconds = 0.0;
  double P50 = 0.0;
  double P99 = 0.0;
  int Ok = 0;
  int Errors = 0;

  double requestsPerSecond() const {
    return Seconds > 0.0 ? Ok / Seconds : 0.0;
  }
};

/// Closed-loop load: each client thread sends RequestsPerClient requests
/// back to back and records per-request wall latency. With several
/// ports the clients spread round-robin over them — the multi-daemon
/// sweep's stand-in for a front-end load balancer.
LoadResult runLoad(const std::vector<int> &Ports, const std::string &Raw,
                   int Clients, int RequestsPerClient) {
  std::vector<std::vector<double>> Latencies(Clients);
  std::atomic<int> Ok{0};
  std::atomic<int> Errors{0};
  Stopwatch Wall;
  std::vector<std::thread> Threads;
  for (int Client = 0; Client < Clients; ++Client)
    Threads.emplace_back([&, Client] {
      const int Port = Ports[Client % Ports.size()];
      Latencies[Client].reserve(RequestsPerClient);
      for (int I = 0; I < RequestsPerClient; ++I) {
        Stopwatch One;
        std::string Response;
        const bool Sent = exchange(Port, Raw, Response);
        if (Sent && Response.find(" 200 ") != std::string::npos) {
          Latencies[Client].push_back(One.seconds());
          ++Ok;
        } else {
          ++Errors;
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();

  LoadResult Out;
  Out.Seconds = Wall.seconds();
  Out.Ok = Ok.load();
  Out.Errors = Errors.load();
  std::vector<double> All;
  for (const std::vector<double> &PerClient : Latencies)
    All.insert(All.end(), PerClient.begin(), PerClient.end());
  Out.P50 = percentile(All, 0.50);
  Out.P99 = percentile(All, 0.99);
  return Out;
}

} // namespace

int main() {
  std::printf("=== wootz::serve throughput: clients x batch cap ===\n\n");

  const std::string ModelText =
      standardModelPrototxt(StandardModel::ResNetA, 4);
  Result<ModelSpec> Spec = parseModelSpec(ModelText);
  if (!Spec) {
    std::fprintf(stderr, "bench model error: %s\n", Spec.message().c_str());
    return 1;
  }
  std::string Input;
  const int InputCount =
      Spec->InputChannels * Spec->InputHeight * Spec->InputWidth;
  for (int I = 0; I < InputCount; ++I)
    Input += (I ? " " : "") + formatDouble(0.01 * (I % 11), 3);
  JsonObject PredictBody;
  PredictBody.field("input", Input);
  const std::string PredictJson = PredictBody.str();

  std::string JsonRows;
  auto pushRow = [&JsonRows](const JsonObject &Row) {
    if (!JsonRows.empty())
      JsonRows += ",\n  ";
    JsonRows += Row.str();
  };

  Table Out({"engine", "batch cap", "clients", "requests", "req/s",
             "p50 ms", "p99 ms", "errors"});
  const int RequestsPerClient = 50;
  for (const bool UsePlans : {false, true})
  for (int MaxBatch : {1, 8}) {
    // One server per (engine, batch cap) cell: both the micro-batcher
    // and the plan freeze happen at construction/registration. State
    // lives under the shared bench cache dir so a rerun reuses the
    // trained teacher.
    const char *Engine = UsePlans ? "plan" : "interpreter";
    ServerOptions Options;
    Options.Http.Workers = 8;
    Options.Batching.MaxBatch = MaxBatch;
    Options.Batching.UsePlans = UsePlans;
    Options.Jobs.CacheDir = wootz::bench::cacheDir() + "/serve_bench";
    WootzServer Server(Options);
    if (Error Started = Server.start()) {
      std::fprintf(stderr, "bench server error: %s\n",
                   Started.message().c_str());
      return 1;
    }
    const int Port = Server.port();

    JsonObject SubmitBody;
    for (const auto &[Key, Value] : tinyJobBody(*Spec, ModelText))
      SubmitBody.field(Key, Value);
    std::string Accepted;
    if (!exchange(Port, makeRequest("POST", "/v1/jobs", SubmitBody.str()),
                  Accepted) ||
        Accepted.find(" 202 ") == std::string::npos) {
      std::fprintf(stderr, "bench job submit failed:\n%s\n",
                   Accepted.c_str());
      return 1;
    }
    const size_t IdAt = Accepted.find("\"id\":\"");
    const std::string JobId = Accepted.substr(
        IdAt + 6, Accepted.find('"', IdAt + 6) - (IdAt + 6));
    Server.jobs().drain(); // Waits for the job; new jobs get 503, but
                           // the predict path stays open.
    if (Server.models().count() == 0) {
      std::fprintf(stderr, "bench job produced no servable model\n");
      return 1;
    }

    const std::string PredictRaw = makeRequest(
        "POST", "/v1/models/" + JobId + "/predict", PredictJson);
    for (int Clients : {1, 2, 4, 8}) {
      const LoadResult Load =
          runLoad({Port}, PredictRaw, Clients, RequestsPerClient);
      Out.addRow({Engine, std::to_string(MaxBatch),
               std::to_string(Clients), std::to_string(Load.Ok),
               formatDouble(Load.requestsPerSecond(), 1),
               formatDouble(Load.P50 * 1e3, 3),
               formatDouble(Load.P99 * 1e3, 3),
               std::to_string(Load.Errors)});
      JsonObject Row;
      Row.field("path", "predict")
          .field("engine", Engine)
          .field("max_batch", MaxBatch)
          .field("clients", Clients)
          .field("requests", Load.Ok)
          .field("errors", Load.Errors)
          .field("requests_per_second", Load.requestsPerSecond(), 1)
          .field("p50_seconds", Load.P50, 6)
          .field("p99_seconds", Load.P99, 6);
      pushRow(Row);
    }
    Server.drain();
  }

  std::printf("%s", Out.render().c_str());
  std::printf("\nexpected shape: with the cap at 1 every request pays its "
              "own forward pass, so\nlatency climbs roughly linearly with "
              "the client count; with the cap at 8 a lone\nclient pays the "
              "bounded companion wait (MaxWaitMicros), but once enough "
              "clients\narrive batches fill early and req/s scales past "
              "the unbatched ceiling.\n");

  const std::string JsonPath = "BENCH_serve.json";
  Error WriteErr = writeFile(JsonPath, "[\n  " + JsonRows + "\n]\n");
  if (WriteErr)
    std::printf("warning: could not write %s: %s\n", JsonPath.c_str(),
                WriteErr.message().c_str());
  else
    std::printf("wrote %s\n", JsonPath.c_str());

  // --- multi-daemon sweep: N in-process daemons over one artifact root.
  //
  // Jobs: four identical explorations submitted round-robin. The fleet
  // shares one block cache, one teacher cache, and one durable queue,
  // so however the jobs land, blocks train once and every later job
  // (or daemon) fetches them. Predictions: a fixed client pool spread
  // round-robin over the daemons against a model uploaded through
  // daemon 1 — every other daemon restores it lazily from the shared
  // models tier.
  std::printf("\n=== multi-daemon: one artifact root, jobs + predictions "
              "===\n\n");
  std::string ShardRows;
  auto pushShardRow = [&ShardRows](const JsonObject &Row) {
    if (!ShardRows.empty())
      ShardRows += ",\n  ";
    ShardRows += Row.str();
  };
  Table Shard({"daemons", "jobs", "jobs wall s", "cache hit", "cache miss",
               "req/s", "p50 ms", "p99 ms", "errors"});
  const std::string Root = wootz::bench::cacheDir() + "/serve_shard_root";
  const int JobCount = 4;
  const int PredictClients = 8;
  for (int Daemons : {1, 2, 4}) {
    // Cold fleet per cell: comparing daemon counts only makes sense
    // when each starts from an empty shared tier.
    std::error_code FsError;
    std::filesystem::remove_all(Root, FsError);

    std::vector<std::unique_ptr<WootzServer>> Fleet;
    std::vector<int> Ports;
    for (int I = 0; I < Daemons; ++I) {
      ServerOptions Options;
      Options.Http.Workers = 4;
      Options.Artifacts.Root = Root;
      Options.Artifacts.ProcessName = "shard-" + std::to_string(I + 1) +
                                      "-of-" + std::to_string(Daemons);
      Options.Jobs.PollSeconds = 0.05;
      Fleet.push_back(std::make_unique<WootzServer>(Options));
      if (Error Started = Fleet.back()->start()) {
        std::fprintf(stderr, "bench shard daemon error: %s\n",
                     Started.message().c_str());
        return 1;
      }
      Ports.push_back(Fleet.back()->port());
    }

    JsonObject Upload;
    Upload.field("id", "bench-model").field("model", ModelText);
    std::string Uploaded;
    if (!exchange(Ports[0],
                  makeRequest("POST", "/v1/models", Upload.str()),
                  Uploaded) ||
        Uploaded.find(" 201 ") == std::string::npos) {
      std::fprintf(stderr, "bench shard upload failed:\n%s\n",
                   Uploaded.c_str());
      return 1;
    }

    JsonObject SubmitBody;
    for (const auto &[Key, Value] : tinyJobBody(*Spec, "bench-model"))
      SubmitBody.field(Key, Value);
    Stopwatch JobsWall;
    std::vector<std::string> JobIds;
    for (int J = 0; J < JobCount; ++J) {
      std::string Accepted;
      if (!exchange(Ports[J % Daemons],
                    makeRequest("POST", "/v1/jobs", SubmitBody.str()),
                    Accepted) ||
          Accepted.find(" 202 ") == std::string::npos) {
        std::fprintf(stderr, "bench shard submit failed:\n%s\n",
                     Accepted.c_str());
        return 1;
      }
      const size_t IdAt = Accepted.find("\"id\":\"");
      JobIds.push_back(Accepted.substr(
          IdAt + 6, Accepted.find('"', IdAt + 6) - (IdAt + 6)));
    }
    // Any daemon can observe any durable job; poll through the first.
    for (const std::string &Id : JobIds)
      for (;;) {
        Result<std::string> Status = Fleet[0]->jobs().statusJson(Id);
        if (!Status) {
          std::fprintf(stderr, "bench shard status error: %s\n",
                       Status.message().c_str());
          return 1;
        }
        if (Status->find("\"state\":\"done\"") != std::string::npos)
          break;
        if (Status->find("\"state\":\"failed\"") != std::string::npos ||
            Status->find("\"state\":\"cancelled\"") != std::string::npos) {
          std::fprintf(stderr, "bench shard job %s did not finish:\n%s\n",
                       Id.c_str(), Status->c_str());
          return 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    const double JobSeconds = JobsWall.seconds();

    // Per-job counters live with whichever daemon executed the job.
    int64_t CacheHits = 0;
    int64_t CacheMisses = 0;
    for (const std::string &Id : JobIds)
      for (const std::unique_ptr<WootzServer> &Daemon : Fleet) {
        const std::map<std::string, int64_t> Counters =
            Daemon->jobs().executor().countersFor(Id);
        const auto Hit = Counters.find("cache.hit");
        if (Hit != Counters.end())
          CacheHits += Hit->second;
        const auto Miss = Counters.find("cache.miss");
        if (Miss != Counters.end())
          CacheMisses += Miss->second;
      }

    const std::string PredictRaw = makeRequest(
        "POST", "/v1/models/bench-model/predict", PredictJson);
    const LoadResult Load =
        runLoad(Ports, PredictRaw, PredictClients, RequestsPerClient);

    Shard.addRow({std::to_string(Daemons), std::to_string(JobCount),
                  formatDouble(JobSeconds, 2), std::to_string(CacheHits),
                  std::to_string(CacheMisses),
                  formatDouble(Load.requestsPerSecond(), 1),
                  formatDouble(Load.P50 * 1e3, 3),
                  formatDouble(Load.P99 * 1e3, 3),
                  std::to_string(Load.Errors)});
    JsonObject Row;
    Row.field("path", "shard")
        .field("daemons", Daemons)
        .field("jobs", JobCount)
        .field("job_wall_seconds", JobSeconds, 3)
        .field("cache_hits", static_cast<int>(CacheHits))
        .field("cache_misses", static_cast<int>(CacheMisses))
        .field("clients", PredictClients)
        .field("requests", Load.Ok)
        .field("errors", Load.Errors)
        .field("requests_per_second", Load.requestsPerSecond(), 1)
        .field("p50_seconds", Load.P50, 6)
        .field("p99_seconds", Load.P99, 6);
    pushShardRow(Row);

    for (const std::unique_ptr<WootzServer> &Daemon : Fleet)
      Daemon->drain();
  }

  std::printf("%s", Shard.render().c_str());
  std::printf("\nexpected shape: identical jobs share one block cache, so "
              "the first execution\npays the training and the rest fetch "
              "(hits grow with the job count); spreading\njobs over more "
              "daemons overlaps the cold work, and predict req/s scales "
              "with the\nfleet because each daemon restores the uploaded "
              "model once and serves locally.\n");

  const std::string ShardPath = "BENCH_shard.json";
  Error ShardErr = writeFile(ShardPath, "[\n  " + ShardRows + "\n]\n");
  if (ShardErr)
    std::printf("warning: could not write %s: %s\n", ShardPath.c_str(),
                ShardErr.message().c_str());
  else
    std::printf("wrote %s\n", ShardPath.c_str());
  return 0;
}
