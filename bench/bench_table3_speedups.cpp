//===- bench/bench_table3_speedups.cpp - Table 3 reproduction --------------------===//
//
// Table 3 of the paper: speedups and configuration savings of
// composability-based pruning over the baseline at various tolerable
// accuracy-drop rates (alpha) with 1, 4, and 16 machines, for the ResNet
// and Inception analogues on all four datasets. Each (model, dataset)
// pair trains the subspace once per method; every (alpha, #nodes) row is
// a replay of the measured per-configuration costs through the paper's
// static schedule (see explore/Cluster.h).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace wootz;
using namespace wootz::bench;

int main() {
  std::printf("=== Table 3: speedups and configuration savings by "
              "composability-based pruning ===\n");
  const int SubspaceSize = 32;
  std::printf("(%d-configuration subspaces; the paper uses 500)\n\n",
              SubspaceSize);

  const TrainMeta Meta = defaultMeta();
  const std::vector<double> Alphas{-0.01, 0.0, 0.01, 0.04, 0.06};
  const std::vector<int> NodeCounts{1, 4, 16};

  for (StandardModel Which :
       {StandardModel::ResNetA, StandardModel::InceptionB}) {
    for (const SyntheticSpec &DataSpec : standardDatasetSpecs()) {
      const Dataset Data = generateSynthetic(DataSpec);
      const ModelSpec Spec = modelFor(Which, Data);
      const std::vector<PruneConfig> Subspace =
          benchSubspace(Spec, Data, SubspaceSize);

      PipelineOptions Baseline;
      const PipelineResult Base =
          runPipeline(Spec, Data, Subspace, Meta, Baseline, 41);
      PipelineOptions Composability;
      Composability.UseComposability = true;
      const PipelineResult Comp =
          runPipeline(Spec, Data, Subspace, Meta, Composability, 41);

      std::printf("--- %s on %s (full accuracy %.3f) ---\n",
                  standardModelName(Which), Data.Name.c_str(),
                  Comp.FullAccuracy);
      Table Out({"alpha", "thr_acc", "#nodes", "configs base", "configs comp",
                 "time base(s)", "time comp(s)", "size base%", "size comp%",
                 "speedup", "overhead"});
      for (double Alpha : Alphas) {
        const double Threshold = Comp.FullAccuracy - Alpha;
        const PruningObjective Objective =
            smallestMeetingAccuracy(Threshold);
        for (int Nodes : NodeCounts) {
          const ExplorationSummary B =
              summarizeExploration(Base, Objective, Nodes);
          const ExplorationSummary C =
              summarizeExploration(Comp, Objective, Nodes);
          const double Speedup =
              C.Seconds > 0.0 ? B.Seconds / C.Seconds : 0.0;
          auto sizeText = [](const ExplorationSummary &S) {
            return S.WinnerIndex < 0
                       ? std::string("-")
                       : formatDouble(100.0 * S.WinnerSizeFraction, 1);
          };
          Out.addRow({formatDouble(100.0 * Alpha, 0) + "%",
                      formatDouble(Threshold, 3), std::to_string(Nodes),
                      std::to_string(B.ConfigsEvaluated),
                      std::to_string(C.ConfigsEvaluated),
                      formatDouble(B.Seconds, 2),
                      formatDouble(C.Seconds, 2), sizeText(B),
                      sizeText(C), formatDouble(Speedup, 1) + "x",
                      formatDouble(100.0 * C.OverheadFraction, 0) + "%"});
        }
        Out.addSeparator();
      }
      std::printf("%s\n", Out.render().c_str());
    }
  }
  std::printf("paper reference (Table 3 shape): comp explores far fewer "
              "configurations at mid alphas,\nspeedups 1.5-186x growing "
              "as the threshold gets harder for the baseline, comp "
              "winners\nno larger than base winners, overhead share "
              "shrinking as total time grows.\n");
  return 0;
}
