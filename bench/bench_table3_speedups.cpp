//===- bench/bench_table3_speedups.cpp - Table 3 reproduction --------------------===//
//
// Table 3 of the paper: speedups and configuration savings of
// composability-based pruning over the baseline at various tolerable
// accuracy-drop rates (alpha) with 1, 4, and 16 machines, for the ResNet
// and Inception analogues on all four datasets. Each (model, dataset)
// pair trains the subspace once per method; every (alpha, #nodes) row is
// a replay of the measured per-configuration costs through the paper's
// static schedule (see explore/Cluster.h).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "src/support/File.h"
#include "src/support/Json.h"

using namespace wootz;
using namespace wootz::bench;

int main() {
  // Besides the human-readable tables, every row also lands in
  // BENCH_table3.json (one JSON array) so plotting/tracking scripts can
  // consume the run without scraping stdout.
  std::string JsonRows;
  std::printf("=== Table 3: speedups and configuration savings by "
              "composability-based pruning ===\n");
  const int SubspaceSize = 32;
  std::printf("(%d-configuration subspaces; the paper uses 500)\n\n",
              SubspaceSize);

  const TrainMeta Meta = defaultMeta();
  const std::vector<double> Alphas{-0.01, 0.0, 0.01, 0.04, 0.06};
  const std::vector<int> NodeCounts{1, 4, 16};

  for (StandardModel Which :
       {StandardModel::ResNetA, StandardModel::InceptionB}) {
    for (const SyntheticSpec &DataSpec : standardDatasetSpecs()) {
      const Dataset Data = generateSynthetic(DataSpec);
      const ModelSpec Spec = modelFor(Which, Data);
      const std::vector<PruneConfig> Subspace =
          benchSubspace(Spec, Data, SubspaceSize);

      PipelineOptions Baseline;
      const PipelineResult Base =
          runPipeline(Spec, Data, Subspace, Meta, Baseline, 41);
      PipelineOptions Composability;
      Composability.UseComposability = true;
      const PipelineResult Comp =
          runPipeline(Spec, Data, Subspace, Meta, Composability, 41);

      std::printf("--- %s on %s (full accuracy %.3f) ---\n",
                  standardModelName(Which), Data.Name.c_str(),
                  Comp.FullAccuracy);
      Table Out({"alpha", "thr_acc", "#nodes", "configs base", "configs comp",
                 "time base(s)", "time comp(s)", "size base%", "size comp%",
                 "speedup", "overhead"});
      for (double Alpha : Alphas) {
        const double Threshold = Comp.FullAccuracy - Alpha;
        const PruningObjective Objective =
            smallestMeetingAccuracy(Threshold);
        for (int Nodes : NodeCounts) {
          const ExplorationSummary B =
              summarizeExploration(Base, Objective, Nodes);
          const ExplorationSummary C =
              summarizeExploration(Comp, Objective, Nodes);
          const double Speedup =
              C.Seconds > 0.0 ? B.Seconds / C.Seconds : 0.0;
          auto sizeText = [](const ExplorationSummary &S) {
            return S.WinnerIndex < 0
                       ? std::string("-")
                       : formatDouble(100.0 * S.WinnerSizeFraction, 1);
          };
          JsonObject Row;
          Row.field("model", standardModelName(Which))
              .field("dataset", Data.Name)
              .field("alpha", Alpha, 4)
              .field("threshold_accuracy", Threshold, 4)
              .field("nodes", Nodes)
              .field("configs_base", B.ConfigsEvaluated)
              .field("configs_comp", C.ConfigsEvaluated)
              .field("seconds_base", B.Seconds, 4)
              .field("seconds_comp", C.Seconds, 4)
              .field("winner_size_base",
                     B.WinnerIndex < 0 ? -1.0 : B.WinnerSizeFraction, 4)
              .field("winner_size_comp",
                     C.WinnerIndex < 0 ? -1.0 : C.WinnerSizeFraction, 4)
              .field("speedup", Speedup, 4)
              .field("overhead_fraction", C.OverheadFraction, 4);
          JsonRows += std::string(JsonRows.empty() ? "" : ",\n  ") +
                      Row.str();
          Out.addRow({formatDouble(100.0 * Alpha, 0) + "%",
                      formatDouble(Threshold, 3), std::to_string(Nodes),
                      std::to_string(B.ConfigsEvaluated),
                      std::to_string(C.ConfigsEvaluated),
                      formatDouble(B.Seconds, 2),
                      formatDouble(C.Seconds, 2), sizeText(B),
                      sizeText(C), formatDouble(Speedup, 1) + "x",
                      formatDouble(100.0 * C.OverheadFraction, 0) + "%"});
        }
        Out.addSeparator();
      }
      std::printf("%s\n", Out.render().c_str());
    }
  }
  const std::string JsonPath = "BENCH_table3.json";
  Error WriteErr =
      writeFile(JsonPath, "[\n  " + JsonRows + "\n]\n");
  if (WriteErr)
    std::printf("warning: could not write %s: %s\n", JsonPath.c_str(),
                WriteErr.message().c_str());
  else
    std::printf("wrote %s\n", JsonPath.c_str());
  std::printf("paper reference (Table 3 shape): comp explores far fewer "
              "configurations at mid alphas,\nspeedups 1.5-186x growing "
              "as the threshold gets harder for the baseline, comp "
              "winners\nno larger than base winners, overhead share "
              "shrinking as total time grows.\n");
  return 0;
}
