//===- bench/bench_table2_composability.cpp - Table 2 reproduction ---------------===//
//
// Table 2 of the paper: median initial and final accuracies of default
// networks (init, final) and block-trained networks (init+, final+) for
// every model on every dataset — the empirical validation of the
// composability hypothesis (§7.2). Tuning blocks are the convolution
// modules (the paper's setting for this table).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace wootz;
using namespace wootz::bench;

int main() {
  std::printf("=== Table 2: median accuracies, default vs block-trained "
              "===\n");
  const int ConfigCount = 8;
  std::printf("(%d pruned networks per cell; the paper uses 500)\n\n",
              ConfigCount);

  const TrainMeta Meta = defaultMeta();
  Table Out({"model", "accuracy", "flowers102", "cub200", "cars", "dogs"});

  for (StandardModel Which : standardModels()) {
    std::vector<std::string> Init{"", "init"};
    std::vector<std::string> InitPlus{"", "init+"};
    std::vector<std::string> Final{"", "final"};
    std::vector<std::string> FinalPlus{"", "final+"};
    Init[0] = standardModelName(Which);

    for (const SyntheticSpec &DataSpec : standardDatasetSpecs()) {
      const Dataset Data = generateSynthetic(DataSpec);
      const ModelSpec Spec = modelFor(Which, Data);
      const std::vector<PruneConfig> Subspace =
          benchSubspace(Spec, Data, ConfigCount);

      PipelineOptions Baseline;
      const PipelineResult Base =
          runPipeline(Spec, Data, Subspace, Meta, Baseline, 11);
      PipelineOptions Composability;
      Composability.UseComposability = true;
      const PipelineResult Comp =
          runPipeline(Spec, Data, Subspace, Meta, Composability, 11);

      std::vector<double> I, IP, F, FP;
      for (const EvaluatedConfig &E : Base.Evaluations) {
        I.push_back(E.InitAccuracy);
        F.push_back(E.FinalAccuracy);
      }
      for (const EvaluatedConfig &E : Comp.Evaluations) {
        IP.push_back(E.InitAccuracy);
        FP.push_back(E.FinalAccuracy);
      }
      Init.push_back(formatDouble(median(I), 3));
      InitPlus.push_back(formatDouble(median(IP), 3));
      Final.push_back(formatDouble(median(F), 3));
      FinalPlus.push_back(formatDouble(median(FP), 3));
    }
    Out.addRow(Init);
    Out.addRow(InitPlus);
    Out.addRow(Final);
    Out.addRow(FinalPlus);
    Out.addSeparator();
  }
  std::printf("%s", Out.render().c_str());
  std::printf(
      "\npaper reference (Table 2 shape): init ~0.01-0.04 (near chance), "
      "init+ 0.54-0.93,\nfinal+ above final by 1-4%% in every cell. "
      "Expected here: init+ >> init, final+ >= final.\n");
  return 0;
}
