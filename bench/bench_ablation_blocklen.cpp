//===- bench/bench_ablation_blocklen.cpp - tuning-block length ablation ----------===//
//
// The §5 trade-off behind the identifier's heuristics: "A pre-trained
// sequence typically has a larger impact than its subsequences all
// together have on the quality of a network; however, the extra benefits
// are usually modest" (the paper quotes +3.1% initial accuracy for
// 4-module vs 1-module ResNet blocks) "...[and] a longer sequence usually
// has a lower chance to be reused." This bench pre-trains blocks of
// length 1, 2, 3 and 6 modules for uniform-rate configurations of the
// 6-module ResNet analogue and reports the assembled networks' initial
// accuracy plus the pre-training cost per block set.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "src/train/Assembly.h"
#include "src/train/ModelZoo.h"
#include "src/train/Pretrainer.h"

using namespace wootz;
using namespace wootz::bench;

int main() {
  std::printf("=== Ablation: tuning-block length vs init+ and "
              "pre-training cost ===\n\n");
  const TrainMeta Meta = defaultMeta();
  const Dataset Data = generateSynthetic(standardDatasetSpecs()[1]);
  Result<ModelSpec> Parsed =
      makeStandardModel(StandardModel::ResNetB, Data.Classes);
  if (!Parsed) {
    std::fprintf(stderr, "%s\n", Parsed.message().c_str());
    return 1;
  }
  const ModelSpec Spec = Parsed.take();
  const MultiplexingModel Model(Spec);
  const int ModuleCount = Spec.moduleCount();

  Rng Generator(81);
  Result<FullModel> Full =
      prepareFullModel(Model, Data, Meta, cacheDir(), Generator);
  if (!Full) {
    std::fprintf(stderr, "%s\n", Full.message().c_str());
    return 1;
  }
  std::printf("model %s on %s (full accuracy %.3f, %d modules)\n\n",
              Spec.Name.c_str(), Data.Name.c_str(), Full->Accuracy,
              ModuleCount);

  Table Out({"block length", "rate", "blocks", "groups", "pretrain (s)",
             "init+", "init (no blocks)"});
  for (float Rate : {0.5f, 0.7f}) {
    const PruneConfig Config(ModuleCount, Rate);
    // Reference: the default network's initial accuracy.
    Rng AssembleGen(82);
    Result<AssembledNetwork> Default = buildPrunedNetwork(
        Model, Config, Full->Network, "full", nullptr, nullptr,
        AssembleGen);
    if (!Default) {
      std::fprintf(stderr, "%s\n", Default.message().c_str());
      return 1;
    }
    const double DefaultInit =
        evaluateAccuracy(Default->Network, Default->InputNode,
                         Default->LogitsNode, Data.Test);

    for (int Length : {1, 2, 3, ModuleCount}) {
      if (ModuleCount % Length != 0)
        continue;
      std::vector<TuningBlock> Blocks;
      for (int First = 0; First < ModuleCount; First += Length)
        Blocks.push_back(
            TuningBlock{First, std::vector<float>(Length, Rate)});

      CheckpointStore Store;
      Rng PretrainGen(83);
      Result<PretrainStats> Stats =
          pretrainBlocks(Model, Full->Network, "full", Blocks, Data, Meta,
                         Store, PretrainGen);
      if (!Stats) {
        std::fprintf(stderr, "%s\n", Stats.message().c_str());
        return 1;
      }
      Rng BlockGen(84);
      Result<AssembledNetwork> BlockTrained =
          buildPrunedNetwork(Model, Config, Full->Network, "full", &Store,
                             &Blocks, BlockGen);
      if (!BlockTrained) {
        std::fprintf(stderr, "%s\n", BlockTrained.message().c_str());
        return 1;
      }
      const double InitPlus = evaluateAccuracy(
          BlockTrained->Network, BlockTrained->InputNode,
          BlockTrained->LogitsNode, Data.Test);
      Out.addRow({std::to_string(Length), formatDouble(Rate, 1),
                  std::to_string(Blocks.size()),
                  std::to_string(Stats->GroupCount),
                  formatDouble(Stats->Seconds, 2),
                  formatDouble(InitPlus, 3),
                  formatDouble(DefaultInit, 3)});
    }
    Out.addSeparator();
  }
  std::printf("%s", Out.render().c_str());
  std::printf("\npaper reference (section 5): 4-module blocks start ~3%% "
              "higher than 1-module blocks, at more pre-training cost "
              "per distinct block and fewer reuse chances — the reason "
              "the identifier prefers small blocks unless a long "
              "sequence repeats as often as its parts.\n");
  return 0;
}
