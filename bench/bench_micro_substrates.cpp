//===- bench/bench_micro_substrates.cpp - substrate micro-benchmarks -------------===//
//
// google-benchmark fixtures for the performance-critical substrates: the
// GEMM/im2col kernels under Conv2D, full-network forward/backward, the
// Prototxt parser, Sequitur compression, and the tuning block
// identifier. These are not paper experiments; they guard the bench
// suite's wall-clock budget against substrate regressions.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "src/nn/Layers.h"
#include "src/nn/Loss.h"

#include <benchmark/benchmark.h>

using namespace wootz;

static void BM_Gemm(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  std::vector<float> A(N * N), B(N * N), C(N * N);
  Rng Generator(1);
  for (float &V : A)
    V = Generator.nextGaussian();
  for (float &V : B)
    V = Generator.nextGaussian();
  for (auto _ : State) {
    gemm(A.data(), B.data(), C.data(), N, N, N);
    benchmark::DoNotOptimize(C.data());
  }
  State.SetItemsProcessed(State.iterations() * int64_t(N) * N * N);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

static void BM_ConvForward(benchmark::State &State) {
  Rng Generator(2);
  Graph Network;
  Network.addInput("x");
  Network.addNode("conv",
                  std::make_unique<Conv2D>(ConvGeometry{12, 12, 3, 1, 1}),
                  {"x"});
  Network.initParams(Generator);
  Tensor In(Shape{8, 12, 8, 8});
  for (size_t I = 0; I < In.size(); ++I)
    In[I] = Generator.nextGaussian();
  Network.setInput("x", In);
  for (auto _ : State) {
    Network.forward(false);
    benchmark::DoNotOptimize(Network.activation("conv").data());
  }
}
BENCHMARK(BM_ConvForward);

static void BM_FullModelTrainStep(benchmark::State &State) {
  Rng Generator(3);
  Result<ModelSpec> Spec = makeStandardModel(StandardModel::ResNetA, 6);
  const MultiplexingModel Model(Spec.take());
  Graph Network;
  Result<BuildResult> Built = Model.build(Network, BuildMode::FullModel,
                                          PruneInfo(), "full", Generator);
  Tensor In(Shape{8, 3, 8, 8});
  for (size_t I = 0; I < In.size(); ++I)
    In[I] = Generator.nextGaussian();
  const std::vector<int> Labels{0, 1, 2, 3, 4, 5, 0, 1};
  Tensor Grad;
  for (auto _ : State) {
    Network.setInput("data", In);
    Network.forward(true);
    Network.zeroGrads();
    softmaxCrossEntropy(Network.activation(Built->LogitsNode), Labels,
                        Grad);
    Network.seedGradient(Built->LogitsNode, Grad);
    Network.backward();
  }
  State.SetLabel("one SGD step, batch 8, mini-resnet-a");
}
BENCHMARK(BM_FullModelTrainStep);

static void BM_PrototxtParse(benchmark::State &State) {
  const std::string Text =
      standardModelPrototxt(StandardModel::ResNetB, 8);
  for (auto _ : State) {
    Result<ModelSpec> Spec = parseModelSpec(Text);
    benchmark::DoNotOptimize(Spec->Layers.size());
  }
  State.SetBytesProcessed(State.iterations() * Text.size());
}
BENCHMARK(BM_PrototxtParse);

static void BM_SequiturAppend(benchmark::State &State) {
  Rng Generator(4);
  std::vector<int> Symbols(static_cast<size_t>(State.range(0)));
  for (int &S : Symbols)
    S = static_cast<int>(Generator.nextBelow(12));
  for (auto _ : State) {
    Sequitur Builder;
    for (int S : Symbols)
      Builder.append(S);
    benchmark::DoNotOptimize(&Builder);
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_SequiturAppend)->Arg(1000)->Arg(10000);

static void BM_IdentifyTuningBlocks(benchmark::State &State) {
  Rng Generator(5);
  const std::vector<PruneConfig> Subspace = sampleSubspace(
      16, static_cast<int>(State.range(0)), standardRates(), Generator);
  for (auto _ : State) {
    IdentifierResult Result =
        identifyTuningBlocks(16, Subspace, standardRates());
    benchmark::DoNotOptimize(Result.Blocks.size());
  }
  State.SetLabel(std::to_string(Subspace.size()) + " networks");
}
BENCHMARK(BM_IdentifyTuningBlocks)->Arg(100)->Arg(500);

static void BM_WeightTransfer(benchmark::State &State) {
  Rng Generator(6);
  Result<ModelSpec> Parsed = makeStandardModel(StandardModel::ResNetA, 6);
  const ModelSpec Spec = Parsed.take();
  const MultiplexingModel Model(Spec);
  Graph Full;
  (void)Model.build(Full, BuildMode::FullModel, PruneInfo(), "full",
                    Generator);
  const PruneConfig Config(Spec.moduleCount(), 0.5f);
  Graph Pruned;
  PruneInfo Info;
  Info.Config = Config;
  (void)Model.build(Pruned, BuildMode::FineTune, Info, "net", Generator);
  for (auto _ : State) {
    const FilterSelections Selections =
        selectFiltersByL1(Spec, Config, Full, "full");
    transferWeights(Spec, Selections, Full, "full", Pruned, "net");
    benchmark::DoNotOptimize(&Pruned);
  }
}
BENCHMARK(BM_WeightTransfer);

BENCHMARK_MAIN();
