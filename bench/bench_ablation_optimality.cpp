//===- bench/bench_ablation_optimality.cpp - heuristic vs exact blocks -----------===//
//
// §5 quantified: the Optimal Tuning Block Definition Problem is NP-hard,
// so Wootz uses the Sequitur heuristic and claims it "gives a reasonable
// trade-off" (§7.3). This ablation measures that claim under the
// explicit cost model of identifier/Optimal.h: over random tiny
// instances (where the exact exponential search is feasible) it reports
// the cost of (a) no pre-training, (b) per-module blocks, (c) the
// hierarchical heuristic, and (d) the exact optimum — plus the heuristic
// to optimum ratio and the sizes of the searches.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>

using namespace wootz;
using namespace wootz::bench;

int main() {
  std::printf("=== Ablation: Sequitur heuristic vs exact optimal tuning "
              "blocks (section 5 cost model) ===\n\n");
  const std::vector<float> Rates{0.0f, 0.3f, 0.5f, 0.7f};
  const BlockCostModel Model; // 1/module pretrain, 4 base, 0.5 saving.

  Table Out({"instance", "modules", "networks", "candidates", "subsets",
             "cost none", "cost per-module", "cost heuristic",
             "cost optimal", "heuristic/optimal"});
  double LogRatioSum = 0.0;
  int Instances = 0;
  double WorstRatio = 0.0;

  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    const int ModuleCount = 3 + static_cast<int>(Seed % 2);
    const int NetworkCount = 3 + static_cast<int>(Seed % 3);
    Rng Generator(Seed * 31);
    const std::vector<PruneConfig> Subspace =
        sampleSubspace(ModuleCount, NetworkCount, Rates, Generator);
    Result<OptimalBlocksResult> Optimal =
        solveOptimalBlocks(Subspace, Model, /*MaxCandidates=*/22);
    if (!Optimal)
      continue; // Candidate pool too large for exactness; skip.

    const IdentifierResult Heuristic =
        identifyTuningBlocks(ModuleCount, Subspace, Rates);
    const double CostNone = evaluateBlockSetCost(Subspace, {}, Model);
    const double CostPerModule =
        evaluateBlockSetCost(Subspace, perModuleBlocks(Subspace), Model);
    const double CostHeuristic =
        evaluateBlockSetCost(Subspace, Heuristic.Blocks, Model);
    const double Ratio =
        Optimal->Cost > 0 ? CostHeuristic / Optimal->Cost : 1.0;
    LogRatioSum += std::log(Ratio);
    WorstRatio = std::max(WorstRatio, Ratio);
    ++Instances;

    Out.addRow({std::to_string(Seed), std::to_string(ModuleCount),
                std::to_string(Subspace.size()),
                std::to_string(Optimal->CandidateCount),
                std::to_string(Optimal->SubsetsSearched),
                formatDouble(CostNone, 1), formatDouble(CostPerModule, 1),
                formatDouble(CostHeuristic, 1),
                formatDouble(Optimal->Cost, 1), formatDouble(Ratio, 2)});
  }
  std::printf("%s", Out.render().c_str());
  if (Instances > 0)
    std::printf("\n%d instances: geometric-mean heuristic/optimal %.3f, "
                "worst %.2f\n",
                Instances, std::exp(LogRatioSum / Instances), WorstRatio);
  std::printf("\nexpected shape: the linear-time heuristic lands close "
              "to the exponential-search optimum (ratio near 1.0) while "
              "visiting none of the 2^candidates subsets — the \"simple "
              "and efficient ... reasonable trade-off\" the paper "
              "claims.\n");
  return 0;
}
