//===- bench/bench_plan.cpp - Interpreter vs static plan latency ---------------===//
//
// Measures what freezing a model into an ExecPlan buys on the serving
// path: single-sample eval-mode forward latency through the Graph
// interpreter vs the compiled plan, for every built-in mini model, plus
// an ablation of the plan's three specializations (BatchNorm folding,
// ReLU fusion, panel pre-packing) so each one's contribution stays
// visible. Kernel workers are pinned to 1: the comparison is pure
// per-call overhead, not parallel scaling.
//
// Every row lands in BENCH_plan.json.
//
//===----------------------------------------------------------------------===//

#include "src/compiler/NetsFactory.h"
#include "src/models/MiniModels.h"
#include "src/nn/Graph.h"
#include "src/plan/Plan.h"
#include "src/support/File.h"
#include "src/support/Json.h"
#include "src/support/Rng.h"
#include "src/support/Stopwatch.h"
#include "src/support/StringUtils.h"
#include "src/support/Table.h"
#include "src/tensor/Kernels.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace wootz;

namespace {

Graph buildModel(StandardModel Which, std::string &LogitsNode) {
  Result<ModelSpec> Spec = makeStandardModel(Which, 4);
  if (!Spec) {
    std::fprintf(stderr, "model spec failed: %s\n", Spec.message().c_str());
    std::abort();
  }
  const MultiplexingModel Model(Spec.take());
  Graph Network;
  Rng Generator(7);
  Result<BuildResult> Built = Model.build(Network, BuildMode::FullModel,
                                          PruneInfo(), "full", Generator);
  if (!Built) {
    std::fprintf(stderr, "model build failed: %s\n", Built.message().c_str());
    std::abort();
  }
  LogitsNode = Built->LogitsNode;
  Network.initParams(Generator);
  return Network;
}

Tensor makeSample(uint64_t Seed) {
  Tensor In(Shape{1, 3, 8, 8});
  Rng Generator(Seed);
  for (size_t I = 0; I < In.size(); ++I)
    In.data()[I] = Generator.nextGaussian();
  return In;
}

struct LatencyStats {
  double P50Micros = 0.0;
  double P99Micros = 0.0;
};

/// Per-call latency percentiles over \p Iters timed calls of \p Body
/// (after \p Warmup untimed ones).
template <typename Fn>
LatencyStats measure(int Warmup, int Iters, Fn &&Body) {
  for (int I = 0; I < Warmup; ++I)
    Body();
  std::vector<double> Micros(static_cast<size_t>(Iters));
  for (int I = 0; I < Iters; ++I) {
    Stopwatch Timer;
    Body();
    Micros[static_cast<size_t>(I)] = Timer.seconds() * 1e6;
  }
  std::sort(Micros.begin(), Micros.end());
  LatencyStats Stats;
  Stats.P50Micros = Micros[Micros.size() / 2];
  Stats.P99Micros = Micros[(Micros.size() * 99) / 100];
  return Stats;
}

} // namespace

int main() {
  std::printf("=== Static plans: frozen-model forward vs the interpreter ===\n\n");
  setKernelWorkers(1);

  constexpr int Warmup = 50;
  constexpr int Iters = 1000;

  std::string JsonRows;
  auto pushRow = [&JsonRows](const JsonObject &Row) {
    JsonRows += std::string(JsonRows.empty() ? "" : ",\n  ") + Row.str();
  };

  Table Rows({"model", "engine", "p50 us", "p99 us", "speedup p50"});
  bool PlanWinsEverywhere = true;
  for (StandardModel Which : standardModels()) {
    const char *Name = standardModelName(Which);
    std::string Logits;
    Graph Network = buildModel(Which, Logits);
    const Tensor In = makeSample(0x5eed);

    ExecContext Ctx(Network);
    const LatencyStats Interp = measure(Warmup, Iters, [&] {
      Ctx.setInput("data", In);
      Ctx.forward(Network, /*Training=*/false);
    });

    struct Variant {
      const char *Label;
      PlanOptions Options;
    };
    std::vector<Variant> Variants = {{"plan", {}}};
    Variants.push_back({"plan-nofold", {}});
    Variants.back().Options.FoldBatchNorm = false;
    Variants.push_back({"plan-nofuse", {}});
    Variants.back().Options.FuseReLU = false;
    Variants.push_back({"plan-nopack", {}});
    Variants.back().Options.PrePackPanels = false;

    Rows.addRow({Name, "interpreter", formatDouble(Interp.P50Micros, 1),
                 formatDouble(Interp.P99Micros, 1), "1.00x"});
    JsonObject InterpRow;
    InterpRow.field("bench", "plan")
        .field("model", Name)
        .field("engine", "interpreter")
        .field("p50_us", Interp.P50Micros, 2)
        .field("p99_us", Interp.P99Micros, 2)
        .field("speedup_p50", 1.0, 3);
    pushRow(InterpRow);

    for (const Variant &V : Variants) {
      Result<ExecPlan> Compiled =
          ExecPlan::compile(Network, "data", Logits, 3, 8, 8, V.Options);
      if (!Compiled) {
        std::fprintf(stderr, "plan compile failed for %s: %s\n", Name,
                     Compiled.message().c_str());
        return 1;
      }
      const ExecPlan Plan = Compiled.take();
      PlanContext PlanCtx(Plan);
      const LatencyStats Stats =
          measure(Warmup, Iters, [&] { PlanCtx.run(In); });
      const double Speedup =
          Stats.P50Micros > 0.0 ? Interp.P50Micros / Stats.P50Micros : 0.0;
      if (std::string(V.Label) == "plan" && Speedup <= 1.0)
        PlanWinsEverywhere = false;
      Rows.addRow({Name, V.Label, formatDouble(Stats.P50Micros, 1),
                   formatDouble(Stats.P99Micros, 1),
                   formatDouble(Speedup, 2) + "x"});
      JsonObject Row;
      Row.field("bench", "plan")
          .field("model", Name)
          .field("engine", V.Label)
          .field("p50_us", Stats.P50Micros, 2)
          .field("p99_us", Stats.P99Micros, 2)
          .field("speedup_p50", Speedup, 3);
      pushRow(Row);
    }
  }
  std::printf("%s", Rows.render().c_str());
  std::printf("\n(single-sample forwards; kernel workers pinned to 1)\n");
  std::printf("plan beats interpreter on every model: %s\n",
              PlanWinsEverywhere ? "yes" : "NO");

  const std::string JsonPath = "BENCH_plan.json";
  Error WriteErr = writeFile(JsonPath, "[\n  " + JsonRows + "\n]\n");
  if (WriteErr)
    std::printf("warning: could not write %s: %s\n", JsonPath.c_str(),
                WriteErr.message().c_str());
  else
    std::printf("wrote %s\n", JsonPath.c_str());
  return 0;
}
