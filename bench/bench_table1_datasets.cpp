//===- bench/bench_table1_datasets.cpp - Table 1 reproduction --------------------===//
//
// Table 1 of the paper: statistics of the four (synthetic-analogue)
// datasets and the test accuracy of the four trained full models on each
// of them — the 16 trained CNNs every other experiment starts from.
// First run trains and caches all 16 models; later runs reload them.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "src/train/ModelZoo.h"

using namespace wootz;
using namespace wootz::bench;

int main() {
  std::printf("=== Table 1: dataset statistics and full-model accuracies "
              "===\n");
  std::printf("(paper: ImageNet-pretrained ResNet-50/101, "
              "Inception-V2/V3 adapted to Flowers102/CUB200/Cars/Dogs;\n"
              " here: miniature analogues trained on synthetic "
              "stand-ins, DESIGN.md section 2)\n\n");

  const TrainMeta Meta = defaultMeta();
  Table Out({"dataset", "total", "train", "test", "classes",
             "mini-resnet-a", "mini-resnet-b", "mini-inception-a",
             "mini-inception-b"});

  for (const SyntheticSpec &DataSpec : standardDatasetSpecs()) {
    const Dataset Data = generateSynthetic(DataSpec);
    std::vector<std::string> Row{
        Data.Name,
        std::to_string(Data.Train.exampleCount() +
                       Data.Test.exampleCount()),
        std::to_string(Data.Train.exampleCount()),
        std::to_string(Data.Test.exampleCount()),
        std::to_string(Data.Classes)};
    for (StandardModel Which : standardModels()) {
      const ModelSpec Spec = modelFor(Which, Data);
      const MultiplexingModel Model(Spec);
      Rng Generator(1000 + static_cast<int>(Which));
      Result<FullModel> Full =
          prepareFullModel(Model, Data, Meta, cacheDir(), Generator);
      if (!Full) {
        std::fprintf(stderr, "error: %s\n", Full.message().c_str());
        return 1;
      }
      Row.push_back(formatDouble(Full->Accuracy, 3) +
                    (Full->FromCache ? " (cached)" : ""));
    }
    Out.addRow(std::move(Row));
  }
  std::printf("%s", Out.render().c_str());
  std::printf("\npaper reference (Table 1 accuracies): flowers .97, "
              "cub .75-.79, cars .79-.85, dogs .84-.86;\n"
              "expected shape here: flowers highest, cub lowest, all "
              "models broadly comparable.\n");
  return 0;
}
