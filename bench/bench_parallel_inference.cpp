//===- bench/bench_parallel_inference.cpp - Shared-model forward scaling --------===//
//
// Measures what the Graph/ExecContext split buys at serving time: N
// threads pushing eval-mode forwards through ONE shared model, each via
// a private execution context, with zero weight copies and zero locks
// on the eval path. Sweeps threads x batch and reports samples/sec plus
// the speedup over the single-thread row; every row also lands in
// BENCH_infer.json so the scaling trajectory is machine-readable.
//
// Kernel-internal workers are pinned to 1 so that all parallelism comes
// from the caller-level contexts being measured.
//
//===----------------------------------------------------------------------===//

#include "src/compiler/NetsFactory.h"
#include "src/models/MiniModels.h"
#include "src/nn/Graph.h"
#include "src/support/File.h"
#include "src/support/Json.h"
#include "src/support/Rng.h"
#include "src/support/Stopwatch.h"
#include "src/support/StringUtils.h"
#include "src/support/Table.h"
#include "src/tensor/Kernels.h"

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace wootz;

namespace {

/// Builds and randomly initializes the full (unpruned) tiny ResNet the
/// compiler benches use.
Graph buildModel(std::string &LogitsNode) {
  Result<ModelSpec> Spec = makeStandardModel(StandardModel::ResNetA, 4);
  if (!Spec) {
    std::fprintf(stderr, "model spec failed: %s\n", Spec.message().c_str());
    std::abort();
  }
  const MultiplexingModel Model(Spec.take());
  Graph Network;
  Rng Generator(7);
  Result<BuildResult> Built = Model.build(Network, BuildMode::FullModel,
                                          PruneInfo(), "full", Generator);
  if (!Built) {
    std::fprintf(stderr, "model build failed: %s\n", Built.message().c_str());
    std::abort();
  }
  LogitsNode = Built->LogitsNode;
  Network.initParams(Generator);
  return Network;
}

Tensor makeBatch(int Batch, uint64_t Seed) {
  Tensor In(Shape{Batch, 3, 8, 8});
  Rng Generator(Seed);
  for (size_t I = 0; I < In.size(); ++I)
    In.data()[I] = Generator.nextGaussian();
  return In;
}

/// Samples/sec for \p Threads workers each running \p Iters eval
/// forwards of a \p Batch-sample input through a private context over
/// the one shared \p Network. Contexts are created and warmed up before
/// the clock starts, so the figure is steady-state throughput.
double samplesPerSecond(const Graph &Network, const std::string &Logits,
                        int Threads, int Batch, int Iters) {
  std::atomic<bool> Go{false};
  std::atomic<int> Ready{0};
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      ExecContext Ctx(Network);
      const Tensor In = makeBatch(Batch, 0x5eed + static_cast<uint64_t>(T));
      Ctx.setInput("data", In);
      Ctx.forward(Network, /*Training=*/false); // Warmup: allocate buffers.
      Ready.fetch_add(1);
      while (!Go.load(std::memory_order_acquire)) {
      }
      for (int I = 0; I < Iters; ++I) {
        Ctx.setInput("data", In);
        Ctx.forward(Network, /*Training=*/false);
      }
      // Touch the logits so the whole forward is observably live.
      if (Ctx.activation(Logits).size() == 0)
        std::abort();
    });

  while (Ready.load() < Threads) {
  }
  Stopwatch Timer;
  Go.store(true, std::memory_order_release);
  for (std::thread &W : Workers)
    W.join();
  const double Seconds = Timer.seconds();
  const double Samples =
      static_cast<double>(Threads) * Iters * static_cast<double>(Batch);
  return Seconds > 0.0 ? Samples / Seconds : 0.0;
}

} // namespace

int main() {
  std::printf("=== Parallel inference: one model, N execution contexts ===\n\n");
  setKernelWorkers(1);

  std::string Logits;
  Graph Network = buildModel(Logits);

  std::string JsonRows;
  auto pushRow = [&JsonRows](const JsonObject &Row) {
    JsonRows += std::string(JsonRows.empty() ? "" : ",\n  ") + Row.str();
  };

  const unsigned Cores = std::thread::hardware_concurrency();
  Table Rows({"threads", "batch", "samples/s", "speedup vs 1T"});
  for (int Batch : {1, 8}) {
    // Enough iterations that each configuration runs a few hundred ms.
    const int Iters = Batch == 1 ? 400 : 80;
    double Baseline = 0.0;
    for (int Threads : {1, 2, 4, 8}) {
      const double Rate =
          samplesPerSecond(Network, Logits, Threads, Batch, Iters);
      if (Threads == 1)
        Baseline = Rate;
      const double Speedup = Baseline > 0.0 ? Rate / Baseline : 0.0;
      Rows.addRow({std::to_string(Threads), std::to_string(Batch),
                   formatDouble(Rate, 1), formatDouble(Speedup, 2) + "x"});
      JsonObject Row;
      Row.field("bench", "parallel_inference")
          .field("threads", Threads)
          .field("batch", Batch)
          .field("samples_per_sec", Rate, 1)
          .field("speedup_vs_1", Speedup, 3)
          .field("hw_threads", static_cast<int>(Cores));
      pushRow(Row);
    }
  }
  std::printf("%s", Rows.render().c_str());
  std::printf("\n(hardware threads: %u; kernel workers pinned to 1)\n", Cores);

  const std::string JsonPath = "BENCH_infer.json";
  Error WriteErr = writeFile(JsonPath, "[\n  " + JsonRows + "\n]\n");
  if (WriteErr)
    std::printf("warning: could not write %s: %s\n", JsonPath.c_str(),
                WriteErr.message().c_str());
  else
    std::printf("wrote %s\n", JsonPath.c_str());
  return 0;
}
