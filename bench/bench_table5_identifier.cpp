//===- bench/bench_table5_identifier.cpp - Table 5 reproduction ------------------===//
//
// Table 5 of the paper: the extra speedup the hierarchical tuning block
// identifier brings over per-module blocks, on two collection types with
// N = 8 configurations each:
//   collection-1: independently sampled per-module rates;
//   collection-2: one rate per run of consecutive modules (the prior-
//                 work style that exposes long shared sequences).
// The extra speedup is time(per-module blocks) / time(identifier
// blocks) for the same exploration.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>

using namespace wootz;
using namespace wootz::bench;

int main() {
  std::printf("=== Table 5: extra speedups from hierarchical tuning "
              "block identification ===\n");
  const int Repeats = 3;
  std::printf("(N=8 configurations per collection, %d repetitions; the "
              "paper repeats 5 times)\n\n",
              Repeats);

  const TrainMeta Meta = defaultMeta();
  double GeoMean[2] = {0.0, 0.0};
  int GeoCount[2] = {0, 0};

  for (StandardModel Which :
       {StandardModel::ResNetA, StandardModel::InceptionB}) {
    for (int DatasetIndex : {0, 1}) { // flowers102 and cub200.
      const Dataset Data =
          generateSynthetic(standardDatasetSpecs()[DatasetIndex]);
      const ModelSpec Spec = modelFor(Which, Data);
      std::printf("--- %s on %s ---\n", standardModelName(Which),
                  Data.Name.c_str());
      Table Out({"collection", "rep", "blocks/module-wise",
                 "blocks/identifier", "time module-wise(s)",
                 "time identifier(s)", "extra speedup"});

      for (int Collection = 1; Collection <= 2; ++Collection) {
        for (int Rep = 0; Rep < Repeats; ++Rep) {
          Rng SampleGen(900 + 10 * Collection + Rep +
                        100 * DatasetIndex +
                        1000 * static_cast<int>(Which));
          const std::vector<PruneConfig> Subspace =
              Collection == 1
                  ? sampleSubspace(Spec.moduleCount(), 8,
                                   standardRates(), SampleGen)
                  : sampleRunSubspace(Spec.moduleCount(), 8, 2,
                                      {0.3f, 0.5f, 0.7f}, SampleGen);

          PipelineOptions PerModule;
          PerModule.UseComposability = true;
          const PipelineResult ModuleWise =
              runPipeline(Spec, Data, Subspace, Meta, PerModule, 61);
          PipelineOptions WithIdentifier = PerModule;
          WithIdentifier.UseIdentifier = true;
          const PipelineResult Identified =
              runPipeline(Spec, Data, Subspace, Meta, WithIdentifier, 61);

          const PruningObjective Objective =
              smallestMeetingAccuracy(ModuleWise.FullAccuracy - 0.02);
          const ExplorationSummary A =
              summarizeExploration(ModuleWise, Objective, 1);
          const ExplorationSummary B =
              summarizeExploration(Identified, Objective, 1);
          const double Extra = B.Seconds > 0 ? A.Seconds / B.Seconds : 1.0;
          GeoMean[Collection - 1] += std::log(Extra);
          ++GeoCount[Collection - 1];
          Out.addRow({"collection-" + std::to_string(Collection),
                      std::to_string(Rep + 1),
                      std::to_string(ModuleWise.Blocks.size()),
                      std::to_string(Identified.Blocks.size()),
                      formatDouble(A.Seconds, 2), formatDouble(B.Seconds, 2),
                      formatDouble(Extra, 2) + "x"});
        }
      }
      std::printf("%s\n", Out.render().c_str());
    }
  }
  std::printf("geometric-mean extra speedup: collection-1 %.2fx, "
              "collection-2 %.2fx\n",
              std::exp(GeoMean[0] / GeoCount[0]),
              std::exp(GeoMean[1] / GeoCount[1]));
  std::printf("paper reference (Table 5): geometric means 1.08x "
              "(collection-1) and 1.11-1.12x (collection-2);\nexpected "
              "shape: means around or above 1.0x, larger on "
              "collection-2 where shared runs are longer.\n");
  return 0;
}
