//===- bench/bench_fig4_sequitur.cpp - Figure 4 reproduction ---------------------===//
//
// Figure 4 of the paper: Sequitur applied to the concatenated layer
// sequences of four networks pruned at rates 0/30/50, the inferred CFG
// with per-rule frequencies, and the tuning blocks the hierarchical
// identifier derives from the rule DAG. Pure CPU symbol processing; no
// training.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace wootz;

int main() {
  std::printf("=== Figure 4: Sequitur on a concatenated sequence of four "
              "pruned networks ===\n\n");

  // Five convolution modules, rates 0 / 0.3 / 0.5, four networks that
  // share long runs (the setting of the paper's example).
  const std::vector<PruneConfig> Subspace{
      {0.3f, 0.3f, 0.3f, 0.5f, 0.5f},
      {0.3f, 0.3f, 0.5f, 0.5f, 0.5f},
      {0.5f, 0.3f, 0.3f, 0.5f, 0.5f},
      {0.0f, 0.3f, 0.5f, 0.5f, 0.5f},
  };
  std::printf("networks (rate per module):\n");
  for (size_t N = 0; N < Subspace.size(); ++N)
    std::printf("  %zu: %s\n", N + 1, formatConfig(Subspace[N]).c_str());

  const IdentifierResult Result =
      identifyTuningBlocks(5, Subspace, {0.0f, 0.3f, 0.5f});

  std::printf("\nCFG by Sequitur (Freq column as in the paper; terminals "
              "in Figure 4 notation):\n%s",
              Result.RuleGrammar.str(Result.TerminalNames).c_str());

  std::printf("\ntuning blocks S chosen by the hierarchical identifier:\n");
  for (const TuningBlock &Block : Result.Blocks)
    std::printf("  %s\n", Block.id().c_str());
  std::printf("\ncomposite vectors:\n");
  for (size_t N = 0; N < Subspace.size(); ++N) {
    std::printf("  network %zu:", N + 1);
    for (int Index : Result.CompositeVectors[N])
      std::printf(" %s", Result.Blocks[Index].id().c_str());
    std::printf("\n");
  }

  // Scale check: the identifier stays linear-time on a realistic
  // subspace (500 networks, as in the paper's experiments).
  Rng Generator(17);
  const std::vector<PruneConfig> Large =
      sampleSubspace(16, 500, standardRates(), Generator);
  Stopwatch Timer;
  const IdentifierResult LargeResult =
      identifyTuningBlocks(16, Large, standardRates());
  std::printf("\n500-network subspace over 16 modules: %zu blocks "
              "identified in %.3fs (%zu grammar rules)\n",
              LargeResult.Blocks.size(), Timer.seconds(),
              LargeResult.RuleGrammar.Rules.size());
  return 0;
}
